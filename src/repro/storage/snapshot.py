"""Versioned cube snapshots: a serving cube that survives process restarts.

A snapshot persists everything a :class:`~repro.session.serving.ServingCube`
needs to answer queries again without recomputing: the named schema, the
relation's encoded columns *and value dictionaries* (so future appends keep
growing the same append-only encoding), the materialised closed cells with
their counts / payload-measure values / representative tuple ids (the state
incremental merge reconstructs closedness from), and the serving
configuration (algorithm, iceberg threshold, measure specs, cache size,
partitioning).

Two on-disk formats share one 12-byte header (magic + version)::

    8 bytes   magic  b"RPROCUBE"
    4 bytes   format version, big-endian unsigned

**v1** (the original format) follows the header with one monolithic pickle of
a snapshot dictionary.  It remains fully readable and writable
(``save_snapshot(..., format="v1")``), but its load time and peak memory
scale with the whole cube twice over: the unpickled payload dictionary and
the constructed serving state coexist, and the inverted index is rebuilt
cell by cell.

**v2** (the current default) is a *chunked streaming* format.  After the
header comes a sequence of self-describing frames, each one::

    1 byte    frame kind
    4 bytes   payload length, big-endian unsigned
    4 bytes   CRC-32 of the payload
    payload   pickle of one bounded chunk

The relation's columns and the cube's cells are split across fixed-size
chunks, so the reader materialises one chunk at a time and never holds the
raw payload and the constructed state together.  v2 additionally persists the
closure index's posting lists (derived state v1 rebuilds on every load) and
the pre-scored apex slot, so a v2 load is a straight reconstruction instead
of a re-index — the speedup ``benchmarks/bench_snapshot.py`` gates.  A
mandatory END frame carries the expected totals; a file that stops before it
— the torn-write crash artefact — raises a crisp
:class:`~repro.core.errors.SnapshotError` naming the truncation, as do a
checksum mismatch and an unknown version byte.

v2 also has an **incremental mode**: :func:`save_delta_segment` writes a
*delta segment* — the appended relation rows plus the closed *delta cube*
over exactly those rows — instead of rewriting the world.
:func:`load_snapshot` accepts an ordered list of segments and folds each one
into the base with the same aggregation-based closedness repair
(:func:`repro.incremental.merge.merge_closed_cubes`) the live append path
uses, landing on the exact serving state.  Segments are how
:meth:`repro.catalog.CubeCatalog.compact` folds a long append journal without
rewriting the base snapshot.

Writes go through a same-directory temporary file followed by an atomic
rename, so readers never observe a half-written snapshot.

.. warning::
   The payloads are **pickle** (raw dimension values and measure specs are
   arbitrary Python objects, which pickle is the only stdlib codec for).
   Unpickling executes code embedded in the stream, and the header and
   checksums authenticate nothing — they detect corruption, not tampering.
   Only load snapshots you (or a process you trust) wrote.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from itertools import islice
from typing import TYPE_CHECKING, BinaryIO, Dict, Iterator, List, Optional, Sequence, Tuple

from .atomic import atomic_write

from ..core.cube import CellStats, CubeResult
from ..core.errors import SnapshotError
from ..core.measures import MeasureSet
from ..core.relation import Relation, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..session.serving import ServingCube

#: File magic identifying a repro cube snapshot.
SNAPSHOT_MAGIC = b"RPROCUBE"
#: The original monolithic-pickle format version.
SNAPSHOT_V1 = 1
#: The chunked streaming format version.
SNAPSHOT_V2 = 2
#: Current default snapshot format version.
SNAPSHOT_VERSION = SNAPSHOT_V2
#: Every version this build knows how to read.
SUPPORTED_VERSIONS = (SNAPSHOT_V1, SNAPSHOT_V2)

_HEADER = struct.Struct(">8sI")
#: v2 frame header: kind byte, payload length, CRC-32 of the payload.
_FRAME = struct.Struct(">BII")

#: v2 frame kinds.
FRAME_META = 0x01
FRAME_COLUMN = 0x02
FRAME_CELLS = 0x03
FRAME_POSTINGS = 0x04
FRAME_END = 0x7F

#: Cells per v2 CELLS frame — bounds the reader's per-chunk materialisation.
CELL_CHUNK = 4096
#: Column values per v2 COLUMN frame.
COLUMN_CHUNK = 65536


def _resolve_format(format: object) -> int:
    if format in ("v1", 1, SNAPSHOT_V1):
        return SNAPSHOT_V1
    if format in ("v2", 2, None, SNAPSHOT_V2):
        return SNAPSHOT_V2
    raise SnapshotError(
        f"unknown snapshot format {format!r}; use 'v1' or 'v2'"
    )


def _check_config(serving: "ServingCube") -> None:
    if not serving.config_known:
        # Persisting the guessed default config would come back as an
        # explicit one on load, re-enabling the maintenance paths this cube
        # refuses — under assumptions (min_sup, closed, measures) that may
        # not match how the cube was computed.
        raise SnapshotError(
            "this ServingCube was constructed without a ServingConfig; "
            "snapshotting it would persist guessed build settings — build "
            "it through CubeSession (or pass config=...) before saving"
        )


def _atomic_write(path: str, write_body) -> int:
    """Write through the shared same-directory temp file + rename helper."""
    return atomic_write(path, write_body, prefix=".snapshot-")


# --------------------------------------------------------------------------- #
# Saving                                                                       #
# --------------------------------------------------------------------------- #


def save_snapshot(serving: "ServingCube", path: str, format: object = "v2") -> int:
    """Write ``serving`` to ``path``; returns the snapshot size in bytes.

    ``format`` selects the on-disk layout: ``"v2"`` (default) streams chunked
    frames, ``"v1"`` writes the original monolithic pickle.  Both round-trip
    through :func:`load_snapshot`.
    """
    _check_config(serving)
    version = _resolve_format(format)
    if version == SNAPSHOT_V1:
        return _atomic_write(path, lambda stream: _write_v1(serving, stream))
    return _atomic_write(path, lambda stream: _write_v2(serving, stream))


def _partition_dim(serving: "ServingCube") -> Optional[int]:
    from ..query.engine import PartitionedQueryEngine

    if isinstance(serving.engine, PartitionedQueryEngine):
        return serving.engine.partition_dim
    return None


def _write_v1(serving: "ServingCube", stream: BinaryIO) -> None:
    relation = serving.relation
    payload: Dict[str, object] = {
        "version": SNAPSHOT_V1,
        "schema": {
            "dimensions": list(relation.schema.dimension_names),
            "measures": list(relation.schema.measure_names),
        },
        "relation": {
            "columns": [list(column) for column in relation.columns],
            "measure_columns": [list(column) for column in relation.measure_columns],
            "decoders": [dict(decoder) for decoder in relation.decoders],
        },
        "cube": {
            "name": serving.cube.name,
            "cells": [
                (cell, stats.count, dict(stats.measures), stats.rep_tid)
                for cell, stats in serving.cube.items()
            ],
        },
        "algorithm": serving.algorithm,
        "config": serving.config,
        "build_seconds": serving.build_seconds,
        "partition_dim": _partition_dim(serving),
        "partition_report": serving.partition_report,
    }
    stream.write(_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_V1))
    pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)


def _write_frame(stream: BinaryIO, kind: int, obj: object) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_FRAME.pack(kind, len(payload), zlib.crc32(payload)))
    stream.write(payload)


def _write_column_frames(
    stream: BinaryIO, role: str, index: int, column: Sequence[object]
) -> None:
    # Chunk by slicing the live column: each frame pickles a bounded copy, so
    # peak writer memory stays O(chunk), not O(relation).
    total = len(column)
    start = 0
    while start < total or (total == 0 and start == 0):
        chunk = list(column[start : start + COLUMN_CHUNK])
        _write_frame(stream, FRAME_COLUMN, (role, index, start, chunk))
        start += COLUMN_CHUNK
        if total == 0:
            break


def _write_cell_frames(stream: BinaryIO, cube: CubeResult):
    """Write ``cube``'s cells as CELLS frames, yielding each written chunk.

    The single serialisation point for the cell tuple shape
    ``(cell, count, measures, rep_tid)`` — full snapshots and delta segments
    must agree on it or a loader could not merge segments into bases.
    Callers must drain the generator; full snapshots use the yielded chunks
    to derive posting lists in write order.
    """
    items = iter(cube.items())
    while True:
        chunk = [
            (cell, stats.count, dict(stats.measures), stats.rep_tid)
            for cell, stats in islice(items, CELL_CHUNK)
        ]
        if not chunk:
            return
        _write_frame(stream, FRAME_CELLS, chunk)
        yield chunk


def _write_v2(serving: "ServingCube", stream: BinaryIO) -> None:
    relation = serving.relation
    cube = serving.cube
    partition_dim = _partition_dim(serving)
    num_dims = relation.num_dimensions
    stream.write(_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_V2))
    _write_frame(stream, FRAME_META, {
        "kind": "full",
        "schema": {
            "dimensions": list(relation.schema.dimension_names),
            "measures": list(relation.schema.measure_names),
        },
        "decoders": [dict(decoder) for decoder in relation.decoders],
        "name": cube.name,
        "algorithm": serving.algorithm,
        "config": serving.config,
        "build_seconds": serving.build_seconds,
        "partition_dim": partition_dim,
        "partition_report": serving.partition_report,
        "num_tuples": relation.num_tuples,
        "num_cells": len(cube),
        "cell_chunk": CELL_CHUNK,
    })
    for index, column in enumerate(relation.columns):
        _write_column_frames(stream, "dim", index, column)
    for index, column in enumerate(relation.measure_columns):
        _write_column_frames(stream, "measure", index, column)

    # Stream the cells in chunks, deriving the posting lists and the apex
    # slot as we go: slots are assigned in write order, so the persisted
    # index state is exactly what a from-scratch rebuild over these cells
    # would produce — minus the per-cell Python loop at load time.
    want_postings = partition_dim is None
    postings: List[Dict[int, List[int]]] = [{} for _ in range(num_dims)]
    best_slot: Optional[int] = None
    best_count = -1
    slot = 0
    for chunk in _write_cell_frames(stream, cube):
        if want_postings:
            for cell, count, _measures, _rep in chunk:
                for dim, value in enumerate(cell):
                    if value is not None:
                        postings[dim].setdefault(value, []).append(slot)
                if count > best_count:
                    best_count = count
                    best_slot = slot
                slot += 1
    if want_postings:
        for dim in range(num_dims):
            _write_frame(stream, FRAME_POSTINGS, (dim, postings[dim]))
    _write_frame(stream, FRAME_END, {
        "cells": len(cube),
        "postings": num_dims if want_postings else 0,
        "best_slot": best_slot,
    })


# --------------------------------------------------------------------------- #
# Delta segments (v2 incremental mode)                                         #
# --------------------------------------------------------------------------- #


def save_delta_segment(serving: "ServingCube", path: str, start_tid: int) -> int:
    """Write the rows appended since ``start_tid`` as a compacted delta segment.

    The segment holds the appended column tails, the grown value
    dictionaries, and the *closed delta cube* over exactly those rows —
    the compacted form of an append journal: closedness collapses every
    journaled batch down to the closed cells it actually touched.  Apply with
    ``load_snapshot(base, segments=[...])``; folding reuses
    :func:`repro.incremental.merge.merge_closed_cubes`, so the loaded state
    is cell-for-cell what the live append path produced.

    Only exact-maintenance configurations can be segmented (full closed
    cubes: ``closed=True, min_sup == 1``, unpartitioned, at most
    :data:`~repro.incremental.maintainer.MAX_DELTA_DIMS` dimensions) —
    anything else must rewrite the base (see
    :func:`delta_segment_supported`).  Returns the segment size in bytes.
    """
    from ..algorithms.base import CubingOptions, get_algorithm
    from ..session.planner import plan_algorithm

    _check_config(serving)
    reason = delta_segment_supported(serving)
    if reason is not None:
        raise SnapshotError(f"cannot write a delta segment: {reason}")
    relation = serving.relation
    num_tuples = relation.num_tuples
    if not 0 <= start_tid <= num_tuples:
        raise SnapshotError(
            f"segment start tid {start_tid} outside 0..{num_tuples}"
        )
    if start_tid == num_tuples:
        raise SnapshotError("no rows appended since the base; nothing to fold")
    config = serving.config
    measures = MeasureSet(tuple(config.measures))
    delta_relation = relation.select(range(start_tid, num_tuples))
    plan = plan_algorithm(
        delta_relation, min_sup=1, closed=True, with_measures=bool(measures)
    )
    options = CubingOptions(
        min_sup=1,
        closed=True,
        measures=measures,
        dimension_order=config.dimension_order,
    )
    # run_delta re-bases representative tuple ids into the *combined* tid
    # space, so segment cells merge with offset 0 at load time.
    result = get_algorithm(plan.algorithm, options).run_delta(
        relation, start_tid, delta_relation=delta_relation
    )

    def write_body(stream: BinaryIO) -> None:
        stream.write(_HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_V2))
        _write_frame(stream, FRAME_META, {
            "kind": "delta",
            "start": start_tid,
            "rows": num_tuples - start_tid,
            "dimensions": relation.num_dimensions,
            "decoders": [dict(decoder) for decoder in relation.decoders],
            "algorithm": result.algorithm,
            "num_cells": len(result.cube),
        })
        for index, column in enumerate(relation.columns):
            _write_column_frames(
                stream, "dim", index, column[start_tid:num_tuples]
            )
        for index, column in enumerate(relation.measure_columns):
            _write_column_frames(
                stream, "measure", index, column[start_tid:num_tuples]
            )
        for _chunk in _write_cell_frames(stream, result.cube):
            pass
        _write_frame(stream, FRAME_END, {
            "cells": len(result.cube), "postings": 0, "best_slot": None,
        })

    return _atomic_write(path, write_body)


def delta_segment_supported(serving: "ServingCube") -> Optional[str]:
    """``None`` when ``serving`` can be incrementally snapshotted, else why not.

    The conditions mirror the exact incremental-maintenance gate: segment
    folding replays :func:`~repro.incremental.merge.merge_closed_cubes`,
    which is exact only for full closed cubes.
    """
    from ..incremental.maintainer import MAX_DELTA_DIMS

    config = serving.config
    if not serving.config_known:
        return "the cube carries no explicit ServingConfig"
    if not config.closed or config.min_sup != 1:
        return (
            "only full closed cubes (closed=True, min_sup=1) support delta "
            "segments; iceberg/non-closed cubes have discarded state"
        )
    if config.partitioned or _partition_dim(serving) is not None:
        return "partitioned cubes refresh per partition, not by delta merge"
    if serving.relation.num_dimensions > MAX_DELTA_DIMS:
        return (
            f"{serving.relation.num_dimensions} dimensions exceed the "
            f"delta-merge bound of {MAX_DELTA_DIMS}"
        )
    return None


# --------------------------------------------------------------------------- #
# Loading                                                                      #
# --------------------------------------------------------------------------- #


def _read_header(stream: BinaryIO, path: str) -> int:
    header = stream.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise SnapshotError(f"{path!r} is too short to be a cube snapshot")
    magic, version = _HEADER.unpack(header)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"{path!r} is not a cube snapshot (bad magic {magic!r})"
        )
    if version not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path!r} uses snapshot format version {version}; this build "
            f"reads versions {list(SUPPORTED_VERSIONS)}"
        )
    return version


def _read_frames(stream: BinaryIO, path: str) -> Iterator[Tuple[int, object]]:
    """Yield validated (kind, object) frames; stop after the END frame.

    Raises :class:`SnapshotError` on a short header or payload (a torn final
    chunk — the crash artefact of an interrupted write), on a CRC mismatch,
    and on a stream that ends before its END frame.
    """
    ended = False
    while True:
        header = stream.read(_FRAME.size)
        if not header:
            if not ended:
                raise SnapshotError(
                    f"{path!r} is truncated: the stream ends before its END "
                    "frame (torn write?)"
                )
            return
        if ended:
            raise SnapshotError(
                f"{path!r} carries data after its END frame"
            )
        if len(header) < _FRAME.size:
            raise SnapshotError(
                f"{path!r} is truncated mid-frame-header (torn write?)"
            )
        kind, length, crc = _FRAME.unpack(header)
        payload = stream.read(length)
        if len(payload) < length:
            raise SnapshotError(
                f"{path!r} is truncated: a {length}-byte chunk stops after "
                f"{len(payload)} bytes (torn write?)"
            )
        if zlib.crc32(payload) != crc:
            raise SnapshotError(
                f"{path!r} failed its chunk checksum (CRC mismatch: stored "
                f"{crc:#010x}, computed {zlib.crc32(payload):#010x})"
            )
        try:
            obj = pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(
                f"{path!r} has a corrupt chunk payload: {exc}"
            ) from exc
        if kind == FRAME_END:
            ended = True
        yield kind, obj


def load_snapshot(path: str, segments: Sequence[str] = ()) -> "ServingCube":
    """Rebuild a serving cube from a snapshot written by :func:`save_snapshot`.

    The relation, closed cells, and configuration come back verbatim; caches
    come back cold.  v2 snapshots stream chunk by chunk and reuse their
    persisted posting lists; v1 snapshots take the original monolithic path.
    ``segments`` — ordered delta segments written by
    :func:`save_delta_segment` — are folded in before the engine opens, each
    one via closed-cube merge.  The returned cube serves, appends, and
    snapshots again exactly like the one that was saved.

    Only load trusted files: the payloads are pickle, so loading a crafted
    snapshot executes arbitrary code (see the module warning).
    """
    try:
        with open(path, "rb") as stream:
            version = _read_header(stream, path)
            if version == SNAPSHOT_V1:
                state = _load_v1(stream, path)
            else:
                state = _load_v2(stream, path)
        relation, cube, meta = state
        config = meta["config"]
        measures = MeasureSet(tuple(config.measures))
        cube.measure_set = measures
    except SnapshotError:
        raise
    except Exception as exc:
        # Corruption that survives the per-frame CRC (e.g. a flipped frame
        # *kind* byte making one frame's payload land in another frame's
        # decoder) must still surface as a crisp SnapshotError, never as a
        # stray unpack/KeyError — the fuzz tests hold the loader to that.
        raise SnapshotError(
            f"{path!r} has inconsistent snapshot state: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    for segment in segments:
        _apply_segment(relation, cube, measures, segment)
    return _open_serving(relation, cube, meta)


_LoadedState = Tuple[Relation, CubeResult, Dict[str, object]]


def _load_v1(stream: BinaryIO, path: str) -> _LoadedState:
    try:
        payload = pickle.load(stream)
    except Exception as exc:
        raise SnapshotError(f"{path!r} has a corrupt payload: {exc}") from exc
    schema_spec = payload["schema"]
    schema = Schema(
        tuple(schema_spec["dimensions"]), tuple(schema_spec["measures"])
    )
    relation_spec = payload["relation"]
    relation = Relation(
        schema,
        [list(column) for column in relation_spec["columns"]],
        [list(column) for column in relation_spec["measure_columns"]],
        [dict(decoder) for decoder in relation_spec["decoders"]],
    )
    cube_spec = payload["cube"]
    cube = CubeResult(relation.num_dimensions, name=cube_spec["name"])
    for cell, count, measures, rep_tid in cube_spec["cells"]:
        cube.add(tuple(cell), count, measures, rep_tid)
    meta = {
        "config": payload["config"],
        "algorithm": payload["algorithm"],
        "build_seconds": payload["build_seconds"],
        "partition_dim": payload["partition_dim"],
        "partition_report": payload["partition_report"],
        "schema": schema,
    }
    return relation, cube, meta


def _load_v2(stream: BinaryIO, path: str) -> _LoadedState:
    from ..query.index import CubeIndex

    meta: Optional[Dict[str, object]] = None
    columns: List[List[object]] = []
    measure_columns: List[List[float]] = []
    cells: List[tuple] = []
    stats: List[CellStats] = []
    cube: Optional[CubeResult] = None
    postings: List[Optional[Dict[int, set]]] = []
    slot_ints: Optional[List[int]] = None
    filled: Dict[str, List[int]] = {}
    end: Optional[Dict[str, object]] = None
    for kind, obj in _read_frames(stream, path):
        if kind == FRAME_META:
            meta = obj  # type: ignore[assignment]
            if meta.get("kind") != "full":
                raise SnapshotError(
                    f"{path!r} is a {meta.get('kind')!r} segment, not a base "
                    "snapshot; pass it via segments=[...] instead"
                )
            # Preallocate every column at its exact final size: chunks fill
            # slices in place, so the assembled lists carry no growth-doubling
            # overallocation (they match what a monolithic load would build).
            num_tuples = meta["num_tuples"]
            columns = [[None] * num_tuples for _ in meta["schema"]["dimensions"]]
            measure_columns = [
                [None] * num_tuples for _ in meta["schema"]["measures"]
            ]
            filled = {
                "dim": [0] * len(columns),
                "measure": [0] * len(measure_columns),
            }
            postings = [None] * len(columns)
            cube = CubeResult(len(columns), name=meta["name"])
        elif meta is None or cube is None:
            raise SnapshotError(f"{path!r} carries data before its META frame")
        elif kind == FRAME_COLUMN:
            role, index, start, values = obj
            target = columns if role == "dim" else measure_columns
            if (
                role not in filled
                or not 0 <= index < len(target)
                or start != filled[role][index]
                or start + len(values) > len(target[index])
            ):
                raise SnapshotError(
                    f"{path!r} has an out-of-order column chunk "
                    f"({role} {index} at offset {start})"
                )
            target[index][start : start + len(values)] = values
            filled[role][index] = start + len(values)
        elif kind == FRAME_CELLS:
            cube_cells = cube._cells
            for cell, count, cell_measures, rep_tid in obj:
                cube_cells[cell] = entry = CellStats(count, cell_measures, rep_tid)
                cells.append(cell)
                stats.append(entry)
        elif kind == FRAME_POSTINGS:
            dim, dim_postings = obj
            if not 0 <= dim < len(postings):
                raise SnapshotError(
                    f"{path!r} has postings for unknown dimension {dim}"
                )
            # Intern slot ids through one shared table: pickle materialises
            # a fresh int object per posting entry, which would bloat the
            # resident index by megabytes on large cubes.  Converting frame
            # by frame also frees each raw chunk before the next one loads.
            if slot_ints is None:
                slot_ints = list(range(len(cells)))
            try:
                postings[dim] = {
                    value: {slot_ints[slot] for slot in slots}
                    for value, slots in dim_postings.items()
                }
            except IndexError as exc:
                raise SnapshotError(
                    f"{path!r} has a posting entry outside its "
                    f"{len(cells)} cell slots"
                ) from exc
        elif kind == FRAME_END:
            end = obj  # type: ignore[assignment]
        else:
            raise SnapshotError(
                f"{path!r} contains an unknown frame kind {kind:#04x}"
            )
    if meta is None or cube is None or end is None:
        raise SnapshotError(f"{path!r} is missing its META frame")
    if len(cube) != end["cells"] or len(cube) != meta["num_cells"]:
        raise SnapshotError(
            f"{path!r} is incomplete: expected {end['cells']} cells, "
            f"found {len(cube)}"
        )
    expected_tuples = meta["num_tuples"]
    if any(
        count != expected_tuples for counts in filled.values() for count in counts
    ):
        raise SnapshotError(
            f"{path!r} is incomplete: column chunks do not cover its "
            f"{expected_tuples} tuples"
        )
    schema = Schema(
        tuple(meta["schema"]["dimensions"]), tuple(meta["schema"]["measures"])
    )
    relation = Relation(schema, columns, measure_columns, meta["decoders"])
    if end["postings"]:
        if any(dim_postings is None for dim_postings in postings):
            raise SnapshotError(f"{path!r} is missing posting-list frames")
        # Attach the reconstructed index as the cube's live closure index:
        # subsequent merges (segment folding, appends) maintain it in place,
        # exactly as if it had been rebuilt from scratch.
        cube._closure_index = CubeIndex.from_snapshot_state(
            cube.num_dims, cells, stats, postings, end["best_slot"],
            slot_ints=slot_ints,
        )
    meta_out = {
        "config": meta["config"],
        "algorithm": meta["algorithm"],
        "build_seconds": meta["build_seconds"],
        "partition_dim": meta["partition_dim"],
        "partition_report": meta["partition_report"],
        "schema": schema,
    }
    return relation, cube, meta_out


def _apply_segment(
    relation: Relation,
    cube: CubeResult,
    measures: MeasureSet,
    path: str,
) -> None:
    """Fold one delta segment into the loaded base state, in order."""
    with open(path, "rb") as stream:
        version = _read_header(stream, path)
        if version != SNAPSHOT_V2:
            raise SnapshotError(
                f"{path!r} is not a delta segment (format version {version})"
            )
        meta: Optional[Dict[str, object]] = None
        delta: Optional[CubeResult] = None
        dim_tails: List[List[object]] = []
        measure_tails: List[List[float]] = []
        for kind, obj in _read_frames(stream, path):
            if kind == FRAME_META:
                meta = obj  # type: ignore[assignment]
                if meta.get("kind") != "delta":
                    raise SnapshotError(
                        f"{path!r} is not a delta segment (it is a "
                        f"{meta.get('kind')!r} snapshot)"
                    )
                if meta["dimensions"] != relation.num_dimensions:
                    raise SnapshotError(
                        f"{path!r} covers {meta['dimensions']} dimensions, "
                        f"the base has {relation.num_dimensions}"
                    )
                if meta["start"] != relation.num_tuples:
                    raise SnapshotError(
                        f"{path!r} starts at tuple {meta['start']} but the "
                        f"base holds {relation.num_tuples} tuples; segments "
                        "must be applied in write order"
                    )
                dim_tails = [[] for _ in range(relation.num_dimensions)]
                measure_tails = [[] for _ in relation.measure_columns]
                delta = CubeResult(relation.num_dimensions)
            elif meta is None or delta is None:
                raise SnapshotError(
                    f"{path!r} carries data before its META frame"
                )
            elif kind == FRAME_COLUMN:
                role, index, start, values = obj
                target = dim_tails if role == "dim" else measure_tails
                if not 0 <= index < len(target) or start != len(target[index]):
                    raise SnapshotError(
                        f"{path!r} has an out-of-order column chunk "
                        f"({role} {index} at offset {start})"
                    )
                target[index].extend(values)
            elif kind == FRAME_CELLS:
                for cell, count, cell_measures, rep_tid in obj:
                    delta.add(cell, count, cell_measures, rep_tid)
            elif kind == FRAME_END:
                if len(delta) != obj["cells"]:
                    raise SnapshotError(
                        f"{path!r} is incomplete: expected {obj['cells']} "
                        f"delta cells, found {len(delta)}"
                    )
            else:
                raise SnapshotError(
                    f"{path!r} contains an unknown frame kind {kind:#04x}"
                )
    if meta is None or delta is None:
        raise SnapshotError(f"{path!r} is missing its META frame")
    if any(len(tail) != meta["rows"] for tail in dim_tails + measure_tails):
        raise SnapshotError(
            f"{path!r} is incomplete: column tails do not cover its "
            f"{meta['rows']} rows"
        )
    for dim, tail in enumerate(dim_tails):
        relation.columns[dim].extend(tail)
    for index, tail in enumerate(measure_tails):
        relation.measure_columns[index].extend(tail)
    for dim, decoder in enumerate(meta["decoders"]):
        relation.decoders[dim].update(decoder)
    delta.measure_set = measures
    # The exact same closed-cube merge the live append path runs — segment
    # rep_tids are already global (run_delta re-based them at write time).
    cube.merge(delta, relation, measures=measures, delta_tid_offset=0)


def _open_serving(
    relation: Relation, cube: CubeResult, meta: Dict[str, object]
) -> "ServingCube":
    from ..query.engine import PartitionedQueryEngine, QueryEngine
    from ..session.schema import CubeSchema
    from ..session.serving import ServingCube

    config = meta["config"]
    schema: Schema = meta["schema"]
    partition_dim = meta["partition_dim"]
    if partition_dim is not None:
        engine = PartitionedQueryEngine(
            cube, partition_dim=partition_dim, cache_size=config.cache_size
        )
    else:
        engine = QueryEngine(cube, cache_size=config.cache_size)
    return ServingCube(
        relation=relation,
        schema=CubeSchema(schema.dimension_names, schema.measure_names),
        cube=cube,
        engine=engine,
        algorithm=meta["algorithm"],
        plan=None,
        build_seconds=meta["build_seconds"],
        config=config,
        partition_report=meta["partition_report"],
    )


def snapshot_version(path: str) -> int:
    """The format version of the snapshot at ``path`` (header read only)."""
    with open(path, "rb") as stream:
        return _read_header(stream, path)
