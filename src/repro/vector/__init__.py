"""Vectorized execution kernels over the columnar backend seam.

See :mod:`repro.vector.kernels` for the kernels and
:mod:`repro.core.columns` for backend selection.
"""

from .kernels import (
    aggregate_measures,
    aggregate_measures_python,
    grouped_closed_aggregate,
    grouped_closed_aggregate_python,
    lexsort_runs,
    repair_pairs,
    repair_pairs_python,
    slice_targets,
    states_from_row,
    vectorizable_measures,
)

__all__ = [
    "aggregate_measures",
    "aggregate_measures_python",
    "grouped_closed_aggregate",
    "grouped_closed_aggregate_python",
    "lexsort_runs",
    "repair_pairs",
    "repair_pairs_python",
    "slice_targets",
    "states_from_row",
    "vectorizable_measures",
]
