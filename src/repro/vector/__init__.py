"""Vectorized execution kernels over the columnar backend seam.

The serving stack's hot per-tuple loops — partition-pass measure
aggregation, closedness repair in the incremental merge, slice target
enumeration, and the grouped aggregation that builds rollup tables —
dispatch through :mod:`repro.core.columns`.  When NumPy is importable
(capability-detected at import; force the fallback with
``REPRO_COLUMN_BACKEND=python`` or
``repro.core.columns.use_backend("python")``), the kernels here take over
with **bit-identical** results; otherwise the exported ``*_python``
reference implementations run the same contracts.  Every kernel is
exported in both forms so the benchmark gate
(``benchmarks/bench_vector.py``) can time the pair against each other and
the cross-backend test suites can prove them value-identical.

See :mod:`repro.vector.kernels` for the kernel catalog and
:mod:`repro.core.columns` for backend selection; consumers include
:mod:`repro.incremental` (repair batches), :mod:`repro.query` (slice
enumeration), and :mod:`repro.rollup` (table builds).
"""

from .kernels import (
    aggregate_measures,
    aggregate_measures_python,
    grouped_closed_aggregate,
    grouped_closed_aggregate_python,
    lexsort_runs,
    repair_pairs,
    repair_pairs_python,
    slice_targets,
    states_from_row,
    vectorizable_measures,
)

__all__ = [
    "aggregate_measures",
    "aggregate_measures_python",
    "grouped_closed_aggregate",
    "grouped_closed_aggregate_python",
    "lexsort_runs",
    "repair_pairs",
    "repair_pairs_python",
    "slice_targets",
    "states_from_row",
    "vectorizable_measures",
]
