"""Vectorized kernels for the hot per-tuple loops.

Each kernel pairs a NumPy implementation with the per-tuple reference path it
replaces; the dispatch functions consult :func:`repro.core.columns.
get_backend` per call and fall back whenever the backend is pure Python or
the input is too small to amortise array setup.  The reference paths are
exported too — the benchmark gate (``benchmarks/bench_vector.py``) times the
pair against each other, and the cross-backend test suites run both to prove
them value-identical.

Kernels
-------
* :func:`aggregate_measures` — fold a tuple-id group's payload measures
  (sum/count/min/max, avg via its ``(sum, count)`` pair) from the relation's
  measure columns in one pass, replacing the per-tid ``MeasureState``
  create/merge loop inside the cubing algorithms' partition passes.
* :func:`lexsort_runs` — multi-column group-by: a stable lexicographic sort
  order plus run-length boundaries, the building block for grouped
  aggregation and row deduplication.
* :func:`grouped_closed_aggregate` — fused multi-column group-by +
  closedness + measure aggregation (lexsort + ``reduceat`` run reductions),
  replacing the per-tuple base-cuboid loop of the MultiWay dense subspace
  (:meth:`repro.algorithms.multiway.DenseSubspace._aggregate_base`).  This
  is the kernel shape where vectorization pays most: the output is one small
  record per *group*, not one Python object per tuple.
* :func:`repair_pairs` — the Lemma-3 closedness repair + measure merge of
  :mod:`repro.incremental.merge`, batched over every candidate materialised
  on both sides of a merge.
* :func:`slice_targets` — project matching index slots onto a slice's
  ``fixed + group_by`` cuboid and deduplicate, replacing the per-slot loop
  in :meth:`repro.query.engine.QueryEngine._slice_targets`.

Candidate generation over the generalisation lattice stays on the BFS of
:func:`repro.incremental.merge.support_generalisations` on purpose: a
level-wise ``np.unique`` formulation was measured 5x *slower* at scale
(190k input cells), because every generalisation must round-trip through a
Python tuple to land in the result set — the same per-element
materialisation cost that bounds :func:`repair_pairs` (see
``docs/PAPER_NOTES.md``).

Exactness: the repair kernel performs the *same* IEEE operations in the same
per-candidate order as ``MeasureSet.merge_values`` (e.g. avg merges as
``(v1*c1 + v2*c2) / (c1+c2)``), so its results are bit-identical.  The
group-aggregation kernel reduces each measure column with NumPy's pairwise
summation where the reference folds sequentially; both are exact on the
integral-valued measure data the suites use, and the lattice-exhaustive
tests are the oracle that keeps the claim honest (see
``docs/PAPER_NOTES.md``).
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.cell import Cell, make_cell
from ..core.closedness import ClosednessState, closed_cell_state
from ..core.columns import column_store, get_backend
from ..core.measures import (
    AvgMeasure,
    AvgState,
    CountMeasure,
    CountState,
    MaxMeasure,
    MaxState,
    MeasureSet,
    MeasureState,
    MinMeasure,
    MinState,
    SumMeasure,
    SumState,
)
from ..core.relation import Relation

#: Below these input sizes array setup costs more than the loop it replaces.
MIN_AGGREGATE_TIDS = 16
MIN_GROUPED_TIDS = 64
MIN_REPAIR_PAIRS = 8
MIN_SLICE_SLOTS = 16

#: One side of a repair candidate, flattened:
#: ``(cell, count, measures, global_rep_tid)`` for base then delta.
RepairPair = Tuple[Cell, int, Dict[str, float], int, Cell, int, Dict[str, float], int]

_VECTOR_SPECS = (CountMeasure, SumMeasure, MinMeasure, MaxMeasure, AvgMeasure)


def vectorizable_measures(measures: MeasureSet) -> bool:
    """Whether every spec is a built-in the kernels know how to fold.

    Exact-type check on purpose: a subclass may override ``create`` or
    ``reconstruct`` with semantics the kernels cannot reproduce, so anything
    customised takes the per-tuple reference path.
    """
    return all(type(spec) in _VECTOR_SPECS for spec in measures.specs)


# --------------------------------------------------------------------------- #
# Aggregate folding                                                            #
# --------------------------------------------------------------------------- #


def aggregate_measures_python(
    measures: MeasureSet, relation: Relation, tids: Sequence[int]
) -> Dict[str, float]:
    """The per-tuple reference fold: one state create+merge per tuple."""
    if not measures:
        return {}
    states = measures.create_states(relation, tids[0])
    for tid in tids[1:]:
        measures.merge_states(states, measures.create_states(relation, tid))
    return measures.values(states)


def aggregate_measures(
    measures: MeasureSet, relation: Relation, tids: Sequence[int]
) -> Dict[str, float]:
    """Payload measure values of the tuple-id group ``tids``.

    Vectorized when the backend is NumPy, the group is large enough, and
    every spec is a built-in; the per-tuple reference path otherwise.
    """
    if not measures:
        return {}
    backend = get_backend()
    if (
        backend.np is None
        or len(tids) < MIN_AGGREGATE_TIDS
        or not vectorizable_measures(measures)
    ):
        return aggregate_measures_python(measures, relation, tids)
    np = backend.np
    store = column_store(relation)
    if isinstance(tids, range):
        index = np.arange(tids.start, tids.stop, tids.step, dtype=np.int64)
    else:
        index = np.asarray(tids, dtype=np.int64)
    schema = relation.schema
    count = len(tids)
    values: Dict[str, float] = {}
    selected: Dict[str, object] = {}
    for spec in measures.specs:
        if type(spec) is CountMeasure:
            values[spec.name] = float(count)
            continue
        column = spec.column
        gathered = selected.get(column)
        if gathered is None:
            gathered = store.measure(schema.measure_index(column))[index]
            selected[column] = gathered
        if type(spec) is SumMeasure:
            values[spec.name] = float(gathered.sum())
        elif type(spec) is MinMeasure:
            values[spec.name] = float(gathered.min())
        elif type(spec) is MaxMeasure:
            values[spec.name] = float(gathered.max())
        else:  # AvgMeasure: the (sum, count) pair of Example 2
            values[spec.name] = float(gathered.sum()) / count
    return values


# --------------------------------------------------------------------------- #
# Multi-column group-by                                                        #
# --------------------------------------------------------------------------- #


def lexsort_runs(columns: Sequence[object]) -> Optional[Tuple[object, object]]:
    """Stable lexicographic sort order and run boundaries of key columns.

    ``columns`` are equal-length integer arrays (first column is the primary
    key).  Returns ``(order, starts)`` — ``order`` the permutation sorting
    the rows, ``starts`` the positions (into ``order``) where a new distinct
    key begins — or ``None`` under the fallback backend (callers keep their
    dictionary group-by).  The sort is stable, so within one run the
    original indices stay ascending: ``order[starts[k]]`` is each group's
    minimum index, which is exactly the representative-tuple convention
    (Definition 6).
    """
    backend = get_backend()
    if backend.np is None or not columns:
        return None
    np = backend.np
    keys = [np.asarray(column, dtype=np.int64) for column in columns]
    order = np.lexsort(keys[::-1])
    length = len(order)
    if length == 0:
        return order, np.empty(0, dtype=np.int64)
    change = np.zeros(length, dtype=bool)
    change[0] = True
    for key in keys:
        sorted_key = key[order]
        change[1:] |= sorted_key[1:] != sorted_key[:-1]
    return order, np.flatnonzero(change)


# --------------------------------------------------------------------------- #
# Fused group-by + closedness + measure aggregation                            #
# --------------------------------------------------------------------------- #

#: Per group: ``(count, rep_tid, closed_mask_or_None, measure_row)``.  The
#: measure row holds one scalar per spec, in spec order, carrying the *state*
#: of the group rather than its display value: count for ``CountMeasure``,
#: the group sum for ``SumMeasure`` *and* ``AvgMeasure`` (the paper's
#: ``(sum, count)`` pair — the count is shared), the group min/max otherwise.
#: :func:`states_from_row` turns a row back into ``MeasureState`` objects.
GroupEntry = Tuple[int, int, Optional[int], Tuple[float, ...]]


def states_from_row(
    measures: MeasureSet, row: Sequence[float], count: int
) -> List[MeasureState]:
    """Reconstruct per-spec measure states from a :data:`GroupEntry` row.

    Exact by construction: the row carries each state's internal scalar
    (sums, extrema, counts), never a derived value — reconstructing an
    ``AvgState`` from its *display* value would round-trip ``sum/count``
    through division and lose bits.
    """
    states: List[MeasureState] = []
    for spec, value in zip(measures.specs, row):
        if type(spec) is CountMeasure:
            states.append(CountState(count))
        elif type(spec) is SumMeasure:
            states.append(SumState(value))
        elif type(spec) is MinMeasure:
            states.append(MinState(value))
        elif type(spec) is MaxMeasure:
            states.append(MaxState(value))
        else:  # AvgMeasure: the (sum, count) pair
            states.append(AvgState(value, count))
    return states


def _state_scalar(spec: object, state: MeasureState) -> float:
    """The :data:`GroupEntry` row scalar of one folded reference state."""
    if type(spec) is CountMeasure:
        return float(state.count)
    if type(spec) is SumMeasure:
        return state.total
    if type(spec) is MinMeasure:
        return state.minimum
    if type(spec) is MaxMeasure:
        return state.maximum
    return state.total  # AvgMeasure


def grouped_closed_aggregate_python(
    relation: Relation,
    tids: Sequence[int],
    keys: Sequence[Sequence[int]],
    measures: MeasureSet,
    track_closedness: bool,
) -> Dict[Tuple[int, ...], GroupEntry]:
    """Reference fused group-by: one dict probe + state fold per tuple.

    ``keys`` are equal-length integer columns, one per group-by axis, aligned
    with ``tids`` by position (``keys[axis][pos]`` belongs to ``tids[pos]``).
    This mirrors the per-tuple loop the MultiWay dense subspace ran before
    the kernel existed: group key tuple, dictionary upsert, closedness
    ``add_tuple``, and a measure-state create+merge, all per tuple.
    """
    groups: Dict[Tuple[int, ...], list] = {}
    for pos in range(len(tids)):
        tid = int(tids[pos])
        coords = tuple(int(key[pos]) for key in keys)
        entry = groups.get(coords)
        if entry is None:
            state = (
                ClosednessState.for_tuple(tid, relation.num_dimensions)
                if track_closedness
                else None
            )
            states = measures.create_states(relation, tid) if measures else None
            groups[coords] = [1, tid, state, states]
        else:
            entry[0] += 1
            if tid < entry[1]:
                entry[1] = tid
            if entry[2] is not None:
                entry[2].add_tuple(tid, relation)
            if measures:
                measures.merge_states(
                    entry[3], measures.create_states(relation, tid)
                )
    specs = measures.specs if measures else ()
    out: Dict[Tuple[int, ...], GroupEntry] = {}
    for coords, (count, rep, state, states) in groups.items():
        row = (
            tuple(_state_scalar(spec, st) for spec, st in zip(specs, states))
            if states is not None
            else ()
        )
        mask = state.closed_mask if state is not None else None
        out[coords] = (count, rep, mask, row)
    return out


def grouped_closed_aggregate(
    relation: Relation,
    tids: Sequence[int],
    keys: Sequence[Sequence[int]],
    measures: MeasureSet,
    track_closedness: bool,
) -> Dict[Tuple[int, ...], GroupEntry]:
    """Fused multi-column group-by with closedness and measure aggregation.

    The vector path sorts once (:func:`lexsort_runs`) and reduces every run
    with ``reduceat``: counts from run lengths, representative tuple ids as
    run minima (Definition 6), the Closed Mask bit of dimension ``d`` from
    ``min == max`` over the run's values on ``d`` — equivalent to Lemma 3's
    "all tuples share one value" by transitivity of equality — and measure
    scalars as run sums/extrema.  Output is one :data:`GroupEntry` per
    *group*, so unlike the per-tuple loop it replaces, no Python object is
    built per tuple.  ``reduceat`` reduces sequentially in sorted-run order,
    which (for ascending ``tids``, the only order callers use) is the same
    tuple order the reference folds in — and the lattice-exhaustive suites
    compare both paths on every cell regardless.

    Dict iteration order is not part of the contract: the reference groups in
    first-occurrence order, the vector path in sorted key order.
    """
    backend = get_backend()
    if (
        backend.np is None
        or not keys
        or len(tids) < MIN_GROUPED_TIDS
        or (measures and not vectorizable_measures(measures))
    ):
        return grouped_closed_aggregate_python(
            relation, tids, keys, measures, track_closedness
        )
    np = backend.np
    runs = lexsort_runs([np.asarray(key, dtype=np.int64) for key in keys])
    if runs is None:  # pragma: no cover - backend checked above
        return grouped_closed_aggregate_python(
            relation, tids, keys, measures, track_closedness
        )
    order, starts = runs
    key_cols = [np.asarray(key, dtype=np.int64) for key in keys]
    tid_index = np.asarray(tids, dtype=np.int64)
    sorted_tids = tid_index[order]
    counts = np.diff(np.append(starts, len(order)))
    reps = np.minimum.reduceat(sorted_tids, starts)

    store = column_store(relation)
    masks = None
    if track_closedness:
        mask_acc = np.zeros(len(starts), dtype=np.int64)
        for dim in range(relation.num_dimensions):
            column = store.dimension(dim)[sorted_tids]
            group_min = np.minimum.reduceat(column, starts)
            group_max = np.maximum.reduceat(column, starts)
            mask_acc |= (group_min == group_max).astype(np.int64) << dim
        masks = mask_acc.tolist()

    rows = None
    if measures:
        schema = relation.schema
        gathered: Dict[str, object] = {}
        columns_out = []
        for spec in measures.specs:
            if type(spec) is CountMeasure:
                columns_out.append(counts.astype(np.float64))
                continue
            column = gathered.get(spec.column)
            if column is None:
                column = store.measure(schema.measure_index(spec.column))[
                    sorted_tids
                ]
                gathered[spec.column] = column
            if type(spec) is MinMeasure:
                columns_out.append(np.minimum.reduceat(column, starts))
            elif type(spec) is MaxMeasure:
                columns_out.append(np.maximum.reduceat(column, starts))
            else:  # SumMeasure / AvgMeasure both carry the group sum
                columns_out.append(np.add.reduceat(column, starts))
        rows = np.stack(columns_out, axis=1).tolist()

    firsts = order[starts]
    key_rows = np.stack([key[firsts] for key in key_cols], axis=1).tolist()
    counts_list = counts.tolist()
    reps_list = reps.tolist()
    out: Dict[Tuple[int, ...], GroupEntry] = {}
    for index, key_row in enumerate(key_rows):
        out[tuple(key_row)] = (
            counts_list[index],
            reps_list[index],
            masks[index] if masks is not None else None,
            tuple(rows[index]) if rows is not None else (),
        )
    return out


# --------------------------------------------------------------------------- #
# Closedness repair (Lemma 3) over candidate batches                           #
# --------------------------------------------------------------------------- #


def repair_pairs_python(
    pairs: Sequence[RepairPair],
    relation: Relation,
    measures: MeasureSet,
) -> List[Tuple[Cell, int, Dict[str, float], int]]:
    """Reference repair: one state reconstruction + Lemma-3 merge per pair."""
    columns = relation.columns
    num_dims = relation.num_dimensions
    results: List[Tuple[Cell, int, Dict[str, float], int]] = []
    for base_cell, base_count, base_values, base_rep, delta_cell, delta_count, delta_values, delta_rep in pairs:
        state = closed_cell_state(base_cell, base_rep)
        state.merge(closed_cell_state(delta_cell, delta_rep), relation)
        mask = state.closed_mask
        rep = state.rep_tid
        closed_cover = tuple(
            columns[dim][rep] if (mask >> dim) & 1 else None
            for dim in range(num_dims)
        )
        merged_values = (
            measures.merge_values(base_values, base_count, delta_values, delta_count)
            if measures
            else {}
        )
        results.append((closed_cover, base_count + delta_count, merged_values, rep))
    return results


def repair_pairs(
    pairs: Sequence[RepairPair],
    relation: Relation,
    measures: MeasureSet,
) -> List[Tuple[Cell, int, Dict[str, float], int]]:
    """Batched closedness repair: ``(closed_cover, count, values, rep)`` per pair.

    The vector path reproduces the reference exactly: the merged Closed Mask
    keeps bit ``d`` iff both cells fix ``d`` and their representative tuples
    agree there (Lemma 3), the representative is the minimum, and the merged
    measure values perform the same reconstruct-merge-refinalise arithmetic
    as :meth:`~repro.core.measures.MeasureSet.merge_values`.
    """
    backend = get_backend()
    if (
        backend.np is None
        or len(pairs) < MIN_REPAIR_PAIRS
        or not vectorizable_measures(measures)
    ):
        return repair_pairs_python(pairs, relation, measures)
    np = backend.np
    num_dims = relation.num_dimensions
    count = len(pairs)
    # Cell -> sentinel row, cached: closures repeat across a merge's
    # candidates, so most conversions are dictionary hits.
    row_cache: Dict[Cell, List[int]] = {}

    def _row(cell: Cell) -> List[int]:
        row = row_cache.get(cell)
        if row is None:
            row = [-1 if v is None else v for v in cell]
            row_cache[cell] = row
        return row

    base_cells = np.array([_row(p[0]) for p in pairs], dtype=np.int64)
    delta_cells = np.array([_row(p[4]) for p in pairs], dtype=np.int64)
    meta = np.fromiter(
        chain.from_iterable((p[1], p[3], p[5], p[7]) for p in pairs),
        dtype=np.int64,
        count=count * 4,
    ).reshape(count, 4)
    base_count, base_rep = meta[:, 0], meta[:, 1]
    delta_count, delta_rep = meta[:, 2], meta[:, 3]

    store = column_store(relation)
    dim_columns = store.dimensions()
    base_at = np.stack([column[base_rep] for column in dim_columns], axis=1)
    delta_at = np.stack([column[delta_rep] for column in dim_columns], axis=1)
    # Lemma 3, all candidates at once: a dimension stays in the Closed Mask
    # iff both closures fix it and the representatives carry equal values.
    shared = (base_cells >= 0) & (delta_cells >= 0) & (base_at == delta_at)
    base_wins = base_rep <= delta_rep
    rep = np.where(base_wins, base_rep, delta_rep)
    cover_values = np.where(base_wins[:, None], base_at, delta_at)

    names = [spec.name for spec in measures.specs]
    payload_rows: Optional[List[List[float]]] = None
    if names:
        width = len(names)
        first = np.fromiter(
            chain.from_iterable([p[2][name] for name in names] for p in pairs),
            dtype=np.float64,
            count=count * width,
        ).reshape(count, width)
        second = np.fromiter(
            chain.from_iterable([p[6][name] for name in names] for p in pairs),
            dtype=np.float64,
            count=count * width,
        ).reshape(count, width)
        merged = np.empty((count, len(names)), dtype=np.float64)
        total = (base_count + delta_count).astype(np.float64)
        for j, spec in enumerate(measures.specs):
            if type(spec) is MinMeasure:
                merged[:, j] = np.minimum(first[:, j], second[:, j])
            elif type(spec) is MaxMeasure:
                merged[:, j] = np.maximum(first[:, j], second[:, j])
            elif type(spec) is AvgMeasure:
                merged[:, j] = (
                    first[:, j] * base_count + second[:, j] * delta_count
                ) / total
            else:  # CountMeasure / SumMeasure both add
                merged[:, j] = first[:, j] + second[:, j]
        payload_rows = merged.tolist()

    cover_rows = np.where(shared, cover_values, -1).tolist()
    rep_list = rep.tolist()
    union_counts = (base_count + delta_count).tolist()
    results: List[Tuple[Cell, int, Dict[str, float], int]] = []
    if payload_rows is None:
        for cov, total_count, rep_tid in zip(cover_rows, union_counts, rep_list):
            cover = tuple(v if v >= 0 else None for v in cov)
            results.append((cover, total_count, {}, rep_tid))
    else:
        for cov, total_count, payload_row, rep_tid in zip(
            cover_rows, union_counts, payload_rows, rep_list
        ):
            cover = tuple(v if v >= 0 else None for v in cov)
            results.append(
                (cover, total_count, dict(zip(names, payload_row)), rep_tid)
            )
    return results


# --------------------------------------------------------------------------- #
# Slice enumeration                                                            #
# --------------------------------------------------------------------------- #


def slice_targets(
    index: object,
    slots: Set[int],
    fixed: Dict[int, int],
    group_by: Sequence[int],
    num_dims: int,
) -> Optional[Set[Cell]]:
    """Distinct slice target cells from matching index slots, vectorized.

    Gathers the group-by dimension values of every slot from the index's
    columnar view (``-1`` marks ``*``), drops slots that leave any group
    dimension unfixed, and deduplicates the surviving rows.  Returns ``None``
    when the view is unavailable (fallback backend) or the slot set is too
    small to beat the per-slot loop.
    """
    if len(slots) < MIN_SLICE_SLOTS:
        return None
    view = index.columns_view()
    if view is None:
        return None
    backend = get_backend()
    np = backend.np
    if np is None:  # pragma: no cover - view implies a NumPy backend
        return None
    if not group_by:
        # Every matching slot projects onto the fixed cell itself.
        return {make_cell(num_dims, fixed)}
    slot_index = np.fromiter(slots, dtype=np.int64, count=len(slots))
    gathered = [view[dim][slot_index] for dim in group_by]
    complete = gathered[0] >= 0
    for column in gathered[1:]:
        complete &= column >= 0
    if not complete.any():
        return set()
    rows = np.stack([column[complete] for column in gathered], axis=1)
    distinct = np.unique(rows, axis=0)
    targets: Set[Cell] = set()
    for row in distinct.tolist():
        assignment = dict(fixed)
        assignment.update(zip(group_by, row))
        targets.add(make_cell(num_dims, assignment))
    return targets
