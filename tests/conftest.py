"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Relation
from repro.core.columns import HAS_NUMPY, use_backend

#: Every column backend importable in this interpreter.  On the no-NumPy CI
#: leg this is just the fallback; elsewhere the equivalence suites run twice
#: and prove the two kernel paths bit-identical.
BACKEND_NAMES = ("numpy", "python") if HAS_NUMPY else ("python",)


@pytest.fixture(params=BACKEND_NAMES)
def column_backend(request):
    """Run the requesting test once per available column backend."""
    with use_backend(request.param):
        yield request.param


def random_relation(
    seed: int,
    max_dims: int = 5,
    max_cardinality: int = 4,
    max_tuples: int = 40,
) -> Relation:
    """A small random relation; used by the cross-algorithm equivalence tests."""
    rng = random.Random(seed)
    num_dims = rng.randint(1, max_dims)
    cardinality = rng.randint(1, max_cardinality)
    num_tuples = rng.randint(1, max_tuples)
    rows = [
        tuple(rng.randint(0, cardinality - 1) for _ in range(num_dims))
        for _ in range(num_tuples)
    ]
    return Relation.from_rows(rows)


@pytest.fixture
def paper_table1() -> Relation:
    """Table 1 of the paper: the running closed-iceberg example."""
    rows = [
        ("a1", "b1", "c1", "d1"),
        ("a1", "b1", "c1", "d3"),
        ("a1", "b2", "c2", "d2"),
    ]
    return Relation.from_rows(rows, ["A", "B", "C", "D"])


@pytest.fixture
def small_skewed_relation() -> Relation:
    """A 3-dimensional relation with repeated values and clear dependences."""
    rows = [
        (0, 0, 0),
        (0, 0, 1),
        (0, 1, 0),
        (0, 1, 0),
        (1, 0, 0),
        (1, 0, 0),
        (1, 2, 2),
        (2, 2, 2),
    ]
    return Relation.from_rows(rows, ["x", "y", "z"])


#: Algorithm names used across the equivalence tests.
CLOSED_ALGORITHMS = (
    "qc-dfs",
    "output-checked",
    "c-cubing-mm",
    "c-cubing-star",
    "c-cubing-star-array",
    "naive-closed",
)
ICEBERG_ALGORITHMS = ("buc", "mm-cubing", "star-cubing", "star-array")
