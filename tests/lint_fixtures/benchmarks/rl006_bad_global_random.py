"""RL006 bad: drawing from the process-global unseeded generator."""

import random
from random import shuffle


def make_rows(count):
    rows = [(random.randrange(4), random.random()) for _ in range(count)]
    shuffle(rows)
    return rows
