"""RL006 bad: a Random() instance constructed without a seed."""

import random
from random import Random


def make_generators():
    return random.Random(), Random()
