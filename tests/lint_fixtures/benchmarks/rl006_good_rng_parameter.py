"""RL006 good: the generator arrives as a parameter; no hidden state."""


def sample(rng, population, count):
    return rng.sample(population, count)


def jitter(rng, base):
    return base * (1.0 + rng.uniform(-0.1, 0.1))
