"""RL006 good: an explicit seeded generator threaded through."""

import random


def make_rows(count, seed=7):
    rng = random.Random(seed)
    return [(rng.randrange(4), rng.random()) for _ in range(count)]
