"""RL001 bad: acquire with no matching release in a finally block."""

import threading

_lock = threading.Lock()


def update(value):
    _lock.acquire()
    shared = value  # an exception here leaks the lock forever
    _lock.release()
    return shared
