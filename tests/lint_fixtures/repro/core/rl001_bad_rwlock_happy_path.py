"""RL001 bad: RWLock acquire_write released only on the happy path."""


class Store:
    def __init__(self, rwlock):
        self.rwlock = rwlock
        self.data = {}

    def put(self, key, value):
        self.rwlock.acquire_write()
        self.data[key] = value
        self.rwlock.release_write()
