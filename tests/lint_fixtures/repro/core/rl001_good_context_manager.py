"""RL001 good: locks held through their context managers."""

import threading

_lock = threading.Lock()


def update(store, key, value):
    with _lock:
        store[key] = value


class Reader:
    def __init__(self, rwlock):
        self.rwlock = rwlock

    def snapshot(self, store):
        with self.rwlock.read():
            return dict(store)
