"""RL001 good: explicit acquire paired with a release in a finally."""


class Channel:
    def __init__(self, append_lock):
        self.append_lock = append_lock
        self.rows = []

    def append(self, rows):
        self.append_lock.acquire()
        try:
            self.rows.extend(rows)
        finally:
            self.append_lock.release()
