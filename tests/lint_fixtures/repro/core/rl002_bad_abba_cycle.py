"""RL002 bad: two code paths take the same two locks in opposite orders."""

import threading

_table_lock = threading.Lock()
_index_lock = threading.Lock()


def insert(table, index, row):
    with _table_lock:
        with _index_lock:
            table.append(row)
            index[row[0]] = row


def lookup(table, index, key):
    with _index_lock:
        with _table_lock:
            return table[index[key]]
