"""RL002 bad: per-name gate acquired while holding the catalog-wide lock.

The serving stack's order is gate first, catalog lock inside it; the
reverse deadlocks against any gate-holder waiting on the catalog lock.
"""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.RLock()
        self._gates = {}

    def _gate(self, name):
        with self._lock:
            return self._gates.setdefault(name, threading.RLock())

    def drop(self, name, cubes):
        with self._lock:
            with self._gate(name):
                cubes.pop(name, None)
