"""RL002 good: every path takes the locks in the same order."""

import threading

_table_lock = threading.Lock()
_index_lock = threading.Lock()


def insert(table, index, row):
    with _table_lock:
        with _index_lock:
            table.append(row)
            index[row[0]] = row


def lookup(table, index, key):
    with _table_lock:
        with _index_lock:
            return table[index[key]]
