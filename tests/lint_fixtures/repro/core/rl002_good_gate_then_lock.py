"""RL002 good: the catalog's real discipline — gate outer, short lock inner."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.RLock()
        self._gates = {}

    def _gate(self, name):
        with self._lock:
            return self._gates.setdefault(name, threading.RLock())

    def append(self, name, cubes, rows):
        with self._gate(name):
            with self._lock:
                entry = cubes[name]
            entry.extend(rows)
