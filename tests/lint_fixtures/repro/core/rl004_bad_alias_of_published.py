"""RL004 bad: aliasing the published cube does not launder the mutation."""


def upsert_rows(server, rows):
    target = server.serving.cube
    target.upsert(rows)
