"""RL004 bad: merging straight into the published cube."""


class Maintainer:
    def __init__(self, serving):
        self.serving = serving

    def refresh(self, delta, relation):
        # Every in-flight query races this half-applied merge.
        self.serving.cube.merge(delta, relation)
