"""RL004 good: copy-on-publish — merge into a clone, swap atomically."""


class Maintainer:
    def __init__(self, serving):
        self.serving = serving

    def refresh(self, delta, relation):
        fresh = self.serving.cube.clone()
        fresh.merge(delta, relation)
        self.serving.publish(fresh)
