"""RL004 good: mutating a cube built inside the function is fine."""


def fold_segments(load_segment, paths):
    cube = load_segment(paths[0])
    for path in paths[1:]:
        delta = load_segment(path)
        cube.merge(delta.cube, delta.relation)
    return cube
