"""RL007 bad: awaiting while a synchronous lock is held."""


class Maintainer:
    async def flush(self, batch):
        with self._lock:  # threading lock: held across the suspension
            prepared = self.stage(batch)
            await self.channel.put(prepared)  # parks holding the lock
            self.applied += len(batch)
