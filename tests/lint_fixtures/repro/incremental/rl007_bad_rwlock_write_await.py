"""RL007 bad: awaiting under an RWLock write side held synchronously."""


async def publish(engine, cube, notifier):
    with engine.lock.write():  # every reader queues behind this
        engine.swap(cube)
        await notifier.broadcast(engine.version)  # suspends mid-write-section
    return engine.version
