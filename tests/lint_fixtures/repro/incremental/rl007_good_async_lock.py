"""RL007 good: an asyncio lock held via ``async with`` cooperates with the loop."""


class Maintainer:
    async def flush(self, batch):
        async with self._lock:
            prepared = self.stage(batch)
            await self.channel.put(prepared)
            self.applied += len(batch)
