"""RL007 good: the critical section completes before the coroutine awaits."""


async def publish(engine, cube, notifier):
    with engine.lock.write():
        engine.swap(cube)
        version = engine.version
    await notifier.broadcast(version)
    return version
