"""RL005 bad: a follower cursor written with a plain truncating open.

A crash mid-dump leaves a torn cursor under its final name; on restart the
follower would silently re-read or skip journal bytes.
"""

import json


def persist_cursor(path, cursor):
    with open(path, "w") as stream:
        json.dump(cursor, stream)


def persist_lease(path, lease):
    path.write_text(json.dumps(lease))
