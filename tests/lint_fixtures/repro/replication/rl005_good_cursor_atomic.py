"""RL005 good: follower cursors land through the atomic funnel; journal
tails are plain reads."""

import json

from repro.storage.atomic import atomic_write_text


def persist_cursor(path, cursor):
    atomic_write_text(path, json.dumps(cursor) + "\n", prefix=".cursor-")


def read_journal_tail(path, offset):
    with open(path) as stream:
        stream.seek(offset)
        return [json.loads(line) for line in stream if line.strip()]
