"""RL004 bad: merging straight into an installed (published) rollup table."""


class Maintainer:
    def __init__(self, serving):
        self.serving = serving

    def fold_delta(self, delta, relation):
        # Queries route against this table concurrently; an in-place merge
        # races them with half-applied rows.
        self.serving.rollup.merge(delta, relation)
