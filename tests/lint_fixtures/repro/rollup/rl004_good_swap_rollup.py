"""RL004 good: rollup maintenance derives a fresh table and swaps it."""


class Maintainer:
    def __init__(self, serving):
        self.serving = serving

    def fold_delta(self, relation):
        fresh = self.serving.rollup.merged_delta(relation)
        self.serving.publish(rollups=fresh)
