"""RL006 bad: a shape recorder sampling from the process-global generator."""

import random


class Recorder:
    def __init__(self, sample_rate):
        self.sample_rate = sample_rate

    def record(self, shape):
        # The hidden global generator makes the shape log — and therefore
        # the advisor's materialisation plan — unreplayable.
        if random.random() >= self.sample_rate:
            return None
        return shape
