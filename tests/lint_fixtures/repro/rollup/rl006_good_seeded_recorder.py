"""RL006 good: an explicitly seeded sampler — the shape log replays exactly."""

import random


class Recorder:
    def __init__(self, sample_rate, seed):
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)

    def record(self, shape):
        if self._rng.random() >= self.sample_rate:
            return None
        return shape
