"""RL003 bad: sleeping and pickling on the event loop thread."""

import pickle
import time


async def handle(request, cube):
    time.sleep(0.1)  # stalls every in-flight request
    return pickle.dumps(cube)
