"""RL003 bad: synchronous lock acquire and file I/O inside a coroutine."""


async def append(channel, path, rows):
    channel.append_lock.acquire()  # blocks the loop until the lock frees
    try:
        with open(path) as stream:  # disk I/O on the loop thread
            header = stream.readline()
        return header, rows
    finally:
        channel.append_lock.release()
