"""RL003 good: asyncio lock acquires awaited (bounded by wait_for)."""

import asyncio


async def append(channel, rows, timeout):
    await asyncio.wait_for(channel.append_lock.acquire(), timeout)
    try:
        await channel.queue.put(rows)
    finally:
        channel.append_lock.release()
