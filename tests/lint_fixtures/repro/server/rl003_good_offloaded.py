"""RL003 good: blocking work handed to an executor, acquire awaited."""

import asyncio
import pickle
from functools import partial


async def handle(server, cube, path):
    loop = asyncio.get_running_loop()
    payload = await loop.run_in_executor(
        server.pool, partial(pickle.dumps, cube)
    )
    data = await loop.run_in_executor(server.pool, _read, path)
    return payload, data


def _read(path):
    # A plain sync helper: runs on the executor, not the loop.
    with open(path, "rb") as stream:
        return stream.read()
