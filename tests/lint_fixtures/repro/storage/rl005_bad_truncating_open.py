"""RL005 bad: a durable artifact written with a plain truncating open."""

import json


def save_manifest(path, payload):
    # A crash mid-dump leaves a half-written manifest under the final name.
    with open(path, "w") as stream:
        json.dump(payload, stream)


def save_snapshot(path, render):
    with open(path, mode="wb") as stream:
        render(stream)
