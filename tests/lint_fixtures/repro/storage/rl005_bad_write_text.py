"""RL005 bad: pathlib-style in-place writes truncate before they land."""

import json


def save(manifest_path, snapshot_path, payload, blob):
    manifest_path.write_text(json.dumps(payload))
    snapshot_path.write_bytes(blob)
