"""RL005 good: append-mode journals and plain reads are the designed modes."""

import json


def journal(path, record):
    # Append-only: the loader tolerates one torn tail line.
    with open(path, "a") as stream:
        stream.write(json.dumps(record) + "\n")


def load(path):
    with open(path) as stream:
        return [json.loads(line) for line in stream if line.strip()]
