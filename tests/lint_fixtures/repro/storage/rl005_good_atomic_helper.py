"""RL005 good: durable writes routed through the atomic funnel."""

import json

from repro.storage.atomic import atomic_write_bytes, atomic_write_text


def save_manifest(path, payload):
    atomic_write_text(path, json.dumps(payload) + "\n")


def save_snapshot(path, blob):
    atomic_write_bytes(path, blob, prefix=".snapshot-")
