"""Tests for the algorithm plumbing: options, registry, run bookkeeping."""

from __future__ import annotations

import pytest

from repro.algorithms.base import (
    CubingOptions,
    available_algorithms,
    algorithms_supporting_closed,
    get_algorithm,
)
from repro.core.errors import AlgorithmError, UnknownAlgorithmError
from repro.core.measures import IcebergCondition
from repro import Relation


def test_registry_contains_the_papers_algorithms():
    names = available_algorithms()
    for expected in (
        "naive", "buc", "qc-dfs", "output-checked", "mm-cubing", "c-cubing-mm",
        "star-cubing", "star-array", "c-cubing-star", "c-cubing-star-array",
    ):
        assert expected in names
    closed_names = algorithms_supporting_closed()
    assert "c-cubing-star" in closed_names
    assert "buc" not in closed_names


def test_aliases_resolve_to_the_same_class():
    assert type(get_algorithm("cc-star")) is type(get_algorithm("c-cubing-star"))
    assert type(get_algorithm("QC-DFS")) is type(get_algorithm("qc-dfs"))


def test_unknown_algorithm_raises():
    with pytest.raises(UnknownAlgorithmError):
        get_algorithm("does-not-exist")


def test_options_iceberg_consistency():
    options = CubingOptions(min_sup=2, iceberg=IcebergCondition(min_sup=2))
    assert options.resolved_iceberg().min_sup == 2
    bad = CubingOptions(min_sup=2, iceberg=IcebergCondition(min_sup=3))
    with pytest.raises(AlgorithmError):
        bad.resolved_iceberg()


def test_options_with_overrides_is_a_copy():
    options = CubingOptions(min_sup=2)
    closed = options.with_overrides(closed=True)
    assert closed.closed and not options.closed
    assert closed.min_sup == 2


def test_duplicate_initial_collapsed_rejected():
    relation = Relation.from_columns([[0, 1], [1, 0]])
    algo = get_algorithm("naive", CubingOptions(initial_collapsed=(0, 0)))
    with pytest.raises(AlgorithmError):
        algo.run(relation)


def test_run_result_reports_time_and_counters():
    relation = Relation.from_columns([[0, 1, 0], [1, 1, 0]])
    result = get_algorithm("naive", CubingOptions()).run(relation)
    assert result.elapsed_seconds >= 0
    assert result.algorithm == "naive"
    assert result.stats.get("cells_emitted", 0) == len(result.cube)
