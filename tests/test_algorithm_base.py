"""Tests for the algorithm plumbing: options, registry, run bookkeeping."""

from __future__ import annotations

import pytest

from repro.algorithms.base import (
    CubingOptions,
    algorithm_capabilities,
    algorithms_supporting_closed,
    available_algorithms,
    get_algorithm,
    resolve_algorithm,
)
from repro.core.errors import AlgorithmError, UnknownAlgorithmError
from repro.core.measures import IcebergCondition
from repro import Relation


def test_registry_contains_the_papers_algorithms():
    names = available_algorithms()
    for expected in (
        "naive", "buc", "qc-dfs", "output-checked", "mm-cubing", "c-cubing-mm",
        "star-cubing", "star-array", "c-cubing-star", "c-cubing-star-array",
    ):
        assert expected in names
    closed_names = algorithms_supporting_closed()
    assert "c-cubing-star" in closed_names
    assert "buc" not in closed_names


def test_aliases_resolve_to_the_same_class():
    assert type(get_algorithm("cc-star")) is type(get_algorithm("c-cubing-star"))
    assert type(get_algorithm("QC-DFS")) is type(get_algorithm("qc-dfs"))


def test_unknown_algorithm_raises():
    with pytest.raises(UnknownAlgorithmError):
        get_algorithm("does-not-exist")


def test_unknown_algorithm_suggests_closest_name():
    with pytest.raises(UnknownAlgorithmError, match=r"did you mean 'c-cubing-star'"):
        get_algorithm("c-cubing-sta")


def test_unknown_algorithm_lists_primary_names_only():
    with pytest.raises(UnknownAlgorithmError) as excinfo:
        get_algorithm("completely-bogus-name-xyz")
    message = str(excinfo.value)
    assert "mm-cubing" in message
    # Aliases like "mmcubing" / "cc-star" must not leak into the listing.
    assert "mmcubing" not in message
    assert "cc-star" not in message


def test_available_algorithms_alias_toggle():
    primary = available_algorithms()
    with_aliases = available_algorithms(include_aliases=True)
    assert set(primary) < set(with_aliases)
    assert "cc-star" in with_aliases and "cc-star" not in primary
    assert "mm" in with_aliases and "mm" not in primary


def test_algorithm_capabilities_metadata():
    capabilities = algorithm_capabilities()
    star = capabilities["c-cubing-star"]
    assert star["supports_closed"] and not star["supports_non_closed"]
    assert not star["supports_measures"] and star["order_sensitive"]
    assert "cc-star" in star["aliases"]
    mm = capabilities["c-cubing-mm"]
    assert mm["supports_closed"] and mm["supports_measures"]
    assert set(capabilities) == set(available_algorithms())


def test_resolve_algorithm_passes_names_through_and_plans_auto():
    relation = Relation.from_columns([[0, 1], [1, 0]])
    options = CubingOptions(closed=True)
    assert resolve_algorithm("buc", relation, options) == "buc"
    planned = resolve_algorithm("auto", relation, options)
    assert planned in algorithms_supporting_closed()


def test_options_iceberg_consistency():
    options = CubingOptions(min_sup=2, iceberg=IcebergCondition(min_sup=2))
    assert options.resolved_iceberg().min_sup == 2
    bad = CubingOptions(min_sup=2, iceberg=IcebergCondition(min_sup=3))
    with pytest.raises(AlgorithmError):
        bad.resolved_iceberg()


def test_options_with_overrides_is_a_copy():
    options = CubingOptions(min_sup=2)
    closed = options.with_overrides(closed=True)
    assert closed.closed and not options.closed
    assert closed.min_sup == 2


def test_duplicate_initial_collapsed_rejected():
    relation = Relation.from_columns([[0, 1], [1, 0]])
    algo = get_algorithm("naive", CubingOptions(initial_collapsed=(0, 0)))
    with pytest.raises(AlgorithmError):
        algo.run(relation)


@pytest.mark.parametrize("collapsed", [(5,), (-1,), (0, 7)])
def test_out_of_range_initial_collapsed_rejected_at_run(collapsed):
    relation = Relation.from_columns([[0, 1], [1, 0]])
    algo = get_algorithm("naive", CubingOptions(initial_collapsed=collapsed))
    with pytest.raises(AlgorithmError, match=r"initial_collapsed.*0\.\.1"):
        algo.run(relation)


def test_in_range_initial_collapsed_still_accepted():
    relation = Relation.from_columns([[0, 1], [1, 0]])
    cube = get_algorithm("naive", CubingOptions(initial_collapsed=(1,))).run(relation).cube
    assert all(cell[1] is None for cell in cube)


def test_run_result_reports_time_and_counters():
    relation = Relation.from_columns([[0, 1, 0], [1, 1, 0]])
    result = get_algorithm("naive", CubingOptions()).run(relation)
    assert result.elapsed_seconds >= 0
    assert result.algorithm == "naive"
    assert result.stats.get("cells_emitted", 0) == len(result.cube)
