"""Tests for the public API facade and the validation helpers."""

from __future__ import annotations

import pytest

from repro import (
    Relation,
    SumMeasure,
    available_algorithms,
    compute_closed_cube,
    compute_cube,
    run_algorithm,
)
from repro.core.cube import CubeResult
from repro.core.errors import UnknownAlgorithmError, ValidationError
from repro.core.validate import (
    check_closedness_definition,
    check_counts,
    check_quotient_semantics,
    reference_closed_cube,
    verify_cube,
)


@pytest.fixture
def relation(paper_table1):
    return paper_table1


def test_compute_cube_defaults(relation):
    cube = compute_cube(relation, min_sup=1)
    assert cube.count_of((None, None, None, None)) == 3
    assert len(cube) == len(reference_closed_cube(relation, 1)) or len(cube) >= len(
        reference_closed_cube(relation, 1)
    )


def test_compute_closed_cube_matches_reference_for_every_engine(relation):
    expected = reference_closed_cube(relation, min_sup=2)
    for name in ("c-cubing-star", "c-cubing-mm", "c-cubing-star-array", "qc-dfs"):
        cube = compute_closed_cube(relation, min_sup=2, algorithm=name)
        assert expected.same_cells(cube)


def test_compute_cube_with_measures(relation):
    priced = Relation.from_rows(
        [("a", "x"), ("a", "y")], ["d0", "d1"], measures={"v": [2.0, 3.0]}
    )
    cube = compute_cube(priced, min_sup=1, algorithm="buc", measures=[SumMeasure("v")])
    assert cube[(0, None)].measures["sum(v)"] == 5.0


def test_run_algorithm_returns_timing(relation):
    result = run_algorithm(relation, "c-cubing-star", min_sup=1, closed=True)
    assert result.elapsed_seconds >= 0
    assert result.algorithm == "c-cubing-star"
    assert len(result.cube) > 0


def test_unknown_algorithm_raises(relation):
    with pytest.raises(UnknownAlgorithmError):
        compute_cube(relation, algorithm="not-an-algorithm")


def test_available_algorithms_listing():
    names = available_algorithms()
    assert "c-cubing-star" in names and "qc-dfs" in names


def test_verify_cube_raises_on_mismatch(relation):
    expected = reference_closed_cube(relation, 1)
    wrong = CubeResult(relation.num_dimensions)
    wrong.add((None, None, None, None), 3)
    with pytest.raises(ValidationError):
        verify_cube(wrong, expected)
    verify_cube(expected, expected)


def test_check_counts_detects_wrong_count(relation):
    cube = CubeResult(relation.num_dimensions)
    cube.add((None, None, None, None), 99)
    with pytest.raises(ValidationError):
        check_counts(relation, cube)


def test_check_closedness_definition_detects_non_closed_cell(relation):
    cube = CubeResult(relation.num_dimensions)
    # (a1, *, c1, *) is covered by (a1, b1, c1, *): not closed.
    cube.add((0, None, 0, None), 2)
    with pytest.raises(ValidationError):
        check_closedness_definition(relation, cube)


def test_check_quotient_semantics_detects_missing_closure(relation):
    incomplete = CubeResult(relation.num_dimensions)
    incomplete.add((None, None, None, None), 3)
    with pytest.raises(ValidationError):
        check_quotient_semantics(relation, incomplete, min_sup=1)
    complete = reference_closed_cube(relation, 1)
    check_quotient_semantics(relation, complete, min_sup=1)
