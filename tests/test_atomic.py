"""Tests for :mod:`repro.storage.atomic` — the durable-write funnel.

Every durable artifact (snapshots, manifest, journal rewrites) flows through
this module's temp-file + rename protocol; ``repro.lint`` rule RL005 pins
that funnel statically.  These tests pin it dynamically: a write that fails
at any stage — body callback, the rename itself — must leave the target
file's previous content untouched and no temporary orphans behind.
"""

from __future__ import annotations

import os

import pytest

from repro.storage import atomic


@pytest.fixture
def target(tmp_path):
    path = tmp_path / "artifact.bin"
    path.write_bytes(b"old content\n")
    return str(path)


def _listdir(path: str):
    return sorted(os.listdir(os.path.dirname(path)))


def test_atomic_write_replaces_content_and_reports_size(target):
    size = atomic.atomic_write(target, lambda stream: stream.write(b"fresh"))
    assert size == 5
    with open(target, "rb") as stream:
        assert stream.read() == b"fresh"
    assert _listdir(target) == ["artifact.bin"]


def test_atomic_write_bytes_and_text(target):
    atomic.atomic_write_bytes(target, b"bytes")
    with open(target, "rb") as stream:
        assert stream.read() == b"bytes"
    atomic.atomic_write_text(target, "texté")
    with open(target, "rb") as stream:
        assert stream.read() == "texté".encode()


def test_failing_body_leaves_target_and_no_orphans(target):
    def explode(stream):
        stream.write(b"half-writ")
        raise RuntimeError("disk on fire")

    with pytest.raises(RuntimeError):
        atomic.atomic_write(target, explode)
    with open(target, "rb") as stream:
        assert stream.read() == b"old content\n"
    assert _listdir(target) == ["artifact.bin"]


def test_failing_rename_leaves_target_and_no_orphans(target, monkeypatch):
    def refuse(src, dst):
        raise OSError("no rename for you")

    monkeypatch.setattr(atomic.os, "replace", refuse)
    with pytest.raises(OSError):
        atomic.atomic_write_bytes(target, b"never lands")
    monkeypatch.undo()
    with open(target, "rb") as stream:
        assert stream.read() == b"old content\n"
    assert _listdir(target) == ["artifact.bin"]


def test_truncate_creates_and_empties(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    atomic.truncate(path)
    assert os.path.getsize(path) == 0
    with open(path, "w") as stream:
        stream.write("line\n")
    atomic.truncate(path)
    assert os.path.getsize(path) == 0
    missing = str(tmp_path / "absent.jsonl")
    atomic.truncate(missing, create=False)
    assert not os.path.exists(missing)


def test_replace_lines_rewrites_atomically(tmp_path, monkeypatch):
    path = str(tmp_path / "journal.jsonl")
    with open(path, "w") as stream:
        stream.write("one\ntwo\nthree\n")
    atomic.replace_lines(path, ["one\n", "three\n"])
    with open(path) as stream:
        assert stream.read() == "one\nthree\n"

    # A crash mid-rewrite must leave the journal byte-for-byte intact.
    def refuse(src, dst):
        raise OSError("crash before rename")

    monkeypatch.setattr(atomic.os, "replace", refuse)
    with pytest.raises(OSError):
        atomic.replace_lines(path, ["one\n"])
    monkeypatch.undo()
    with open(path) as stream:
        assert stream.read() == "one\nthree\n"
