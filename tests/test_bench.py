"""Tests for the benchmark harness (workloads, runner, reporting, CLI plumbing)."""

from __future__ import annotations

import pytest

from repro.bench.figures import FigureResult, available_figures, get_figure, run_figure
from repro.bench.harness import ExperimentRunner
from repro.bench.report import render_figure, render_table, rows_to_csv
from repro.bench.workloads import (
    mixed_cardinality_workload,
    synthetic_workload,
    weather_workload,
)
from repro.bench.__main__ import main as bench_main
from repro.core.errors import WorkloadError


def test_synthetic_workload_builds_expected_shape():
    workload = synthetic_workload("w", 50, num_dims=3, cardinality=4, skew=1.0, min_sup=2)
    relation = workload.relation()
    assert relation.num_tuples == 50
    assert relation.num_dimensions == 3
    assert workload.min_sup == 2
    assert "T=50" in workload.description


def test_weather_workload_is_cached_and_projected():
    workload = weather_workload("w", num_dims=5, min_sup=2, num_tuples=200)
    first = workload.relation()
    second = workload.relation()
    assert first.num_dimensions == 5
    assert first.num_tuples == 200
    # Both calls project the same cached base relation.
    assert first.row(0) == second.row(0)


def test_mixed_cardinality_workload():
    workload = mixed_cardinality_workload("w", num_tuples=100, min_sup=2, high_cardinality=50)
    relation = workload.relation()
    assert relation.num_dimensions == 8


def test_experiment_runner_single_point_with_verification():
    workload = synthetic_workload("point", 40, num_dims=3, cardinality=3, min_sup=1)
    runner = ExperimentRunner(verify=True)
    measurements = runner.run_point("figX", "p0", workload, ["c-cubing-star", "qc-dfs"])
    assert len(measurements) == 2
    assert all(m.verified for m in measurements)
    assert all(m.cells > 0 and m.seconds >= 0 for m in measurements)
    assert measurements[0].as_row()["figure"] == "figX"


def test_experiment_runner_sweep_and_winner():
    runner = ExperimentRunner()
    points = [
        (f"T={size}", synthetic_workload(f"T{size}", size, 3, 3, min_sup=1))
        for size in (20, 40)
    ]
    sweep = runner.run_sweep("figY", points, ["c-cubing-star", "c-cubing-mm"])
    assert sweep.points() == ["T=20", "T=40"]
    assert set(sweep.algorithms()) == {"c-cubing-star", "c-cubing-mm"}
    assert sweep.winner("T=20") in {"c-cubing-star", "c-cubing-mm"}
    assert sweep.seconds("T=20", "c-cubing-star") is not None
    assert sweep.seconds("T=99", "c-cubing-star") is None


def test_runner_requires_algorithms():
    workload = synthetic_workload("point", 20, 2, 2, min_sup=1)
    with pytest.raises(WorkloadError):
        ExperimentRunner().run_point("f", "p", workload, [])


def test_render_table_and_csv_round_trip():
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy", "c": 3}]
    table = render_table(rows)
    assert "a" in table and "22" in table
    assert render_table([]) == "(no rows)"
    csv_text = rows_to_csv(rows)
    assert csv_text.splitlines()[0] == "a,b,c"
    assert rows_to_csv([]) == ""


def test_render_figure_includes_metadata():
    result = FigureResult("figZ", "title", "setting", "shape", rows=[{"x": 1}], notes=["n"])
    text = render_figure(result)
    assert "figZ" in text and "setting" in text and "note: n" in text


def test_figure_registry_contains_every_paper_figure():
    figures = available_figures()
    expected = {f"fig{n:02d}" for n in range(3, 19)} | {"e62", "e63"}
    assert expected <= set(figures)
    spec = get_figure("fig03")
    assert spec.figure == "fig03"
    with pytest.raises(WorkloadError):
        get_figure("fig99")


def test_run_small_extension_experiment():
    result = run_figure("e63")
    assert result.rows
    assert all(row["matches_in_memory"] for row in result.rows)


def test_cli_list_and_requires_selection(capsys):
    assert bench_main(["--list"]) == 0
    captured = capsys.readouterr()
    assert "fig03" in captured.out
    with pytest.raises(SystemExit):
        bench_main([])
