"""Tests for BUC, QC-DFS and the output-index baseline."""

from __future__ import annotations

import pytest

from repro.algorithms.base import CubingOptions, get_algorithm
from repro.core.validate import reference_closed_cube, reference_iceberg_cube
from conftest import random_relation


def test_buc_matches_oracle_on_iceberg_cubes(small_skewed_relation):
    for min_sup in (1, 2, 3):
        expected = reference_iceberg_cube(small_skewed_relation, min_sup)
        cube = get_algorithm("buc", CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_buc_apriori_pruning_counter(small_skewed_relation):
    algo = get_algorithm("buc", CubingOptions(min_sup=3))
    algo.run(small_skewed_relation)
    assert algo.counters.get("apriori_pruned", 0) > 0


def test_buc_respects_dimension_order(small_skewed_relation):
    default = get_algorithm("buc", CubingOptions()).run(small_skewed_relation).cube
    reordered = get_algorithm(
        "buc", CubingOptions(dimension_order=[2, 1, 0])
    ).run(small_skewed_relation).cube
    assert default.same_cells(reordered)


def test_qcdfs_matches_oracle_closed_cube(small_skewed_relation):
    for min_sup in (1, 2):
        expected = reference_closed_cube(small_skewed_relation, min_sup)
        cube = get_algorithm("qc-dfs", CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_qcdfs_counts_scanning_work(small_skewed_relation):
    algo = get_algorithm("qc-dfs", CubingOptions(min_sup=1))
    algo.run(small_skewed_relation)
    assert algo.counters.get("scan_steps", 0) > 0


def test_qcdfs_forces_closed_output(small_skewed_relation):
    algo = get_algorithm("qc-dfs", CubingOptions(min_sup=1, closed=False))
    assert algo.options.closed is True


def test_output_checked_matches_oracle(small_skewed_relation):
    for min_sup in (1, 2):
        expected = reference_closed_cube(small_skewed_relation, min_sup)
        cube = get_algorithm("output-checked", CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_output_checked_tracks_index_overhead(small_skewed_relation):
    algo = get_algorithm("output-checked", CubingOptions(min_sup=1))
    algo.run(small_skewed_relation)
    assert algo.counters.get("index_size_peak", 0) >= len(
        reference_closed_cube(small_skewed_relation, 1)
    )


@pytest.mark.parametrize("seed", range(6))
def test_buc_family_on_random_relations(seed):
    relation = random_relation(seed + 100, max_dims=4, max_cardinality=3, max_tuples=30)
    for min_sup in (1, 2):
        expected_iceberg = reference_iceberg_cube(relation, min_sup)
        expected_closed = reference_closed_cube(relation, min_sup)
        buc = get_algorithm("buc", CubingOptions(min_sup=min_sup)).run(relation).cube
        qcdfs = get_algorithm("qc-dfs", CubingOptions(min_sup=min_sup)).run(relation).cube
        checked = get_algorithm("output-checked", CubingOptions(min_sup=min_sup)).run(relation).cube
        assert expected_iceberg.same_cells(buc)
        assert expected_closed.same_cells(qcdfs)
        assert expected_closed.same_cells(checked)
