"""Tests for the multi-cube catalog (:mod:`repro.catalog`).

The load-bearing property is durability of the registry round trip: create →
save → reopen in a fresh catalog → append must land exactly where the
original process stood, including the appends that only ever hit the journal
(the per-cube append stream) and never a snapshot.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import CubeCatalog, CubeSession, Sum
from repro.core.errors import CatalogError
from repro.storage.manifest import (
    CatalogManifest,
    appends_filename,
    snapshot_filename,
    validate_cube_name,
)

ROWS = [
    ("s1", "p1"),
    ("s1", "p2"),
    ("s2", "p1"),
    ("s2", "p2"),
    ("s1", "p1"),
]
SCHEMA = ["store", "product"]


@pytest.fixture
def catalog(tmp_path):
    return CubeCatalog(str(tmp_path / "cubes"))


# --------------------------------------------------------------------------- #
# Registry operations                                                          #
# --------------------------------------------------------------------------- #


def test_create_open_list_drop(catalog):
    cube = catalog.create("sales", ROWS, schema=SCHEMA)
    assert catalog.list() == ["sales"]
    assert "sales" in catalog and len(catalog) == 1
    assert catalog.open("sales") is cube  # the live instance, not a reload
    catalog.drop("sales")
    assert catalog.list() == [] and "sales" not in catalog
    with pytest.raises(CatalogError):
        catalog.open("sales")


def test_create_writes_snapshot_immediately(catalog, tmp_path):
    catalog.create("sales", ROWS, schema=SCHEMA)
    assert os.path.exists(os.path.join(catalog.directory, "sales.cube"))
    # A fresh catalog over the same directory can serve without any save().
    reopened = CubeCatalog(catalog.directory)
    assert reopened.open("sales").point({"store": "s1"}).count == 3


def test_create_duplicate_name_rejected(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(CatalogError, match="already exists"):
        catalog.create("sales", ROWS, schema=SCHEMA)


@pytest.mark.parametrize("name", ["", ".hidden", "-flag", "a/b", "a b", "a\n"])
def test_invalid_cube_names_rejected(catalog, name):
    with pytest.raises(CatalogError, match="invalid cube name"):
        catalog.create(name, ROWS, schema=SCHEMA)


def test_validate_cube_name_accepts_sensible_names():
    for name in ("sales", "sales_2026", "a.b-c", "X"):
        assert validate_cube_name(name) == name
    assert snapshot_filename("sales") == "sales.cube"
    assert appends_filename("sales") == "sales.appends.jsonl"


def test_create_from_session_carries_configuration(catalog):
    rows = [("s1", "p1", 10.0), ("s1", "p2", 20.0), ("s2", "p1", 30.0)]
    session = (
        CubeSession.from_rows(
            rows, schema={"dimensions": SCHEMA, "measures": ["price"]}
        )
        .closed(min_sup=1)
        .measures(Sum("price"))
    )
    cube = catalog.create("priced", session)
    assert cube.point({"store": "s1"}).measure("sum(price)") == 30.0
    # The configuration survives the snapshot round trip.
    reloaded = CubeCatalog(catalog.directory).open("priced")
    assert reloaded.point({"store": "s1"}).measure("sum(price)") == 30.0


def test_build_into_registers_in_catalog(catalog):
    session = CubeSession.from_rows(ROWS, schema=SCHEMA).closed()
    cube = session.build_into(catalog, "sales")
    assert catalog.open("sales") is cube


def test_create_rejects_schema_override_for_built_sources(catalog):
    cube = CubeSession.from_rows(ROWS, schema=SCHEMA).build()
    with pytest.raises(CatalogError, match="schema cannot be overridden"):
        catalog.create("sales", cube, schema=["x", "y"])


def test_describe_reports_metadata(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    info = catalog.describe("sales")
    assert info["rows"] == len(ROWS)
    assert info["dimensions"] == SCHEMA
    assert info["loaded"] is True
    assert info["pending_appends"] == 0


# --------------------------------------------------------------------------- #
# The durability round trip                                                    #
# --------------------------------------------------------------------------- #


def test_round_trip_create_save_reopen_append(catalog):
    """The ISSUE's acceptance loop: create → save → reopen → append."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s3", "p1")])
    catalog.save("sales")

    reopened = CubeCatalog(catalog.directory)
    cube = reopened.open("sales")
    assert cube.point({"store": "s3"}).count == 1
    report = reopened.append("sales", [("s3", "p2"), ("s1", "p1")])
    assert report.appended_rows == 2
    assert cube.point({"store": "s3"}).count == 2
    assert cube.point({"store": "s1", "product": "p1"}).count == 3

    # Every answer matches a from-scratch rebuild over all the rows.
    all_rows = ROWS + [("s3", "p1"), ("s3", "p2"), ("s1", "p1")]
    rebuilt = CubeSession.from_rows(all_rows, schema=SCHEMA).build()
    assert cube.cube.same_cells(rebuilt.cube)


def test_unsaved_appends_replay_from_the_journal(catalog):
    """An append that never made it into a snapshot still survives reopen."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    # No save(): the snapshot on disk predates the append.
    reopened = CubeCatalog(catalog.directory)
    assert reopened.describe("sales")["pending_appends"] == 1
    assert reopened.open("sales").point({"store": "s9"}).count == 1


def test_save_truncates_the_journal(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    assert os.path.getsize(path) > 0
    catalog.save("sales")
    assert os.path.getsize(path) == 0
    assert catalog.describe("sales")["pending_appends"] == 0


def test_torn_journal_tail_is_tolerated(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    with open(path, "a") as stream:
        stream.write('{"rows": [["s8",')  # a crash mid-write
    cube = CubeCatalog(catalog.directory).open("sales")
    assert cube.point({"store": "s9"}).count == 1  # intact batch replayed
    assert cube.point({"store": "s8"}).count is None  # torn batch dropped


def test_corrupt_journal_middle_line_raises(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    with open(path, "w") as stream:
        stream.write("not json\n")
        stream.write(json.dumps({"rows": [["s9", "p9"]]}) + "\n")
    with pytest.raises(CatalogError, match="corrupt append stream"):
        CubeCatalog(catalog.directory).open("sales")


def test_failed_append_rolls_the_journal_back(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(Exception, match="."):  # the exact failure type varies
        catalog.append("sales", [("only-one-column",)])
    assert catalog.describe("sales")["pending_appends"] == 0
    # The journal stays replayable.
    assert CubeCatalog(catalog.directory).open("sales").point(
        {"store": "s1"}
    ).count == 3


def test_journal_rollback_preserves_later_records(catalog):
    """Undoing a failed append must not erase records journaled after it."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    mine = json.dumps({"rows": [["bad", "row"]]}) + "\n"
    theirs = json.dumps({"rows": [["s7", "p7"]]}) + "\n"
    with open(path, "w") as stream:
        stream.write(mine)
        stream.write(theirs)  # another thread landed after our journal write
    catalog._remove_journal_record(path, 0, mine)
    with open(path) as stream:
        assert stream.read() == theirs
    # Fast path: our record is still the tail -> plain truncate.
    with open(path, "a") as stream:
        offset = stream.tell()
        stream.write(mine)
    catalog._remove_journal_record(path, offset, mine)
    with open(path) as stream:
        assert stream.read() == theirs


def test_journal_rollback_slow_path_survives_a_crash(catalog, monkeypatch):
    """A crash mid-rewrite must leave the journal byte-for-byte intact.

    The slow path rewrites the whole stream to drop one record; the loader
    tolerates a torn *tail* line but not a torn middle, so the rewrite goes
    through the atomic temp+rename funnel.  Simulate the crash at the worst
    instant — after the temp file is written, before the rename — and check
    that every record other writers own is still there.
    """
    from repro.storage import atomic

    catalog.create("sales", ROWS, schema=SCHEMA)
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    mine = json.dumps({"rows": [["bad", "row"]]}) + "\n"
    theirs = json.dumps({"rows": [["s7", "p7"]]}) + "\n"
    with open(path, "w") as stream:
        stream.write(mine)
        stream.write(theirs)  # forces the slow (rewrite) path

    def crash(src, dst):
        raise OSError("simulated crash before rename")

    monkeypatch.setattr(atomic.os, "replace", crash)
    with pytest.raises(OSError):
        catalog._remove_journal_record(path, 0, mine)
    monkeypatch.undo()
    with open(path) as stream:
        assert stream.read() == mine + theirs
    # And with the funnel healthy again, the retraction still lands.
    catalog._remove_journal_record(path, 0, mine)
    with open(path) as stream:
        assert stream.read() == theirs


def test_concurrent_good_and_bad_appends_keep_the_journal_exact(catalog):
    """Failed appends roll back without losing concurrent good batches."""
    import threading

    catalog.create("sales", ROWS, schema=SCHEMA)
    good_rows = [[(f"s{worker}", f"p{batch}")] for worker in range(3)
                 for batch in range(5)]
    failures = []

    def good_worker(batches):
        for batch in batches:
            catalog.append("sales", batch)

    def bad_worker():
        for _ in range(10):
            try:
                catalog.append("sales", [("only-one-column",)])
            except Exception:
                failures.append(1)

    threads = [
        threading.Thread(target=good_worker, args=(good_rows[i::3],))
        for i in range(3)
    ] + [threading.Thread(target=bad_worker) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(failures) == 20
    # Every good batch survived in the journal and replays on reopen.
    reopened = CubeCatalog(catalog.directory)
    assert reopened.describe("sales")["pending_appends"] == len(good_rows)
    cube = reopened.open("sales")
    all_rows = ROWS + [tuple(row) for batch in good_rows for row in batch]
    rebuilt = CubeSession.from_rows(all_rows, schema=SCHEMA).build()
    assert cube.cube.same_cells(rebuilt.cube)


def test_get_loaded_never_loads(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    reopened = CubeCatalog(catalog.directory)
    assert reopened.get_loaded("sales") is None  # on disk, not in memory
    cube = reopened.open("sales")
    assert reopened.get_loaded("sales") is cube
    assert reopened.get_loaded("ghost") is None


def test_non_json_rows_rejected_with_guidance(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(CatalogError, match="JSON-serialisable"):
        catalog.append("sales", [(object(), "p1")])


def test_load_discards_the_in_memory_instance(catalog):
    cube = catalog.create("sales", ROWS, schema=SCHEMA)
    fresh = catalog.load("sales")
    assert fresh is not cube
    assert catalog.open("sales") is fresh


def test_mapping_rows_round_trip_through_the_journal(catalog):
    rows = [{"store": "s1", "product": "p1"}, {"store": "s2", "product": "p2"}]
    catalog.create("sales", rows, schema=SCHEMA)
    catalog.append("sales", [{"store": "s3", "product": "p3"}])
    reopened = CubeCatalog(catalog.directory).open("sales")
    assert reopened.point({"store": "s3"}).count == 1


def test_empty_append_is_a_noop_and_not_journaled(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    report = catalog.append("sales", [])
    assert report.mode == "no-op" and report.appended_rows == 0
    assert catalog.describe("sales")["pending_appends"] == 0


# --------------------------------------------------------------------------- #
# Compaction                                                                   #
# --------------------------------------------------------------------------- #


def _append_batches(catalog, name, count, prefix="n"):
    rows = []
    for index in range(count):
        batch = [(f"{prefix}{index}", f"p{index % 3}")]
        catalog.append(name, batch)
        rows.extend(batch)
    return rows


def test_compact_incremental_reopens_identically(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    extra = _append_batches(catalog, "sales", 6)
    assert catalog.describe("sales")["pending_appends"] == 6

    report = catalog.compact("sales")
    assert report["mode"] == "incremental"
    assert report["folded_journal_bytes"] > 0
    info = catalog.describe("sales")
    assert info["segments"] == [report["segment"]]
    assert info["pending_appends"] == 0
    # The folded journal bytes are reclaimed, not just skipped.
    assert info["journal_bytes"] == 0 and info["journal_offset"] == 0
    assert info["rows"] == len(ROWS) + len(extra)

    # Appends after the fold land in the journal tail and replay on top.
    tail = _append_batches(catalog, "sales", 2, prefix="t")
    assert catalog.describe("sales")["pending_appends"] == 2

    reopened = CubeCatalog(catalog.directory).open("sales")
    rebuilt = CubeSession.from_rows(ROWS + extra + tail, schema=SCHEMA).build()
    assert reopened.cube.same_cells(rebuilt.cube), reopened.cube.diff(rebuilt.cube)


def test_compact_full_flips_the_generation(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    extra = _append_batches(catalog, "sales", 4)
    catalog.compact("sales")  # stack one segment first
    more = _append_batches(catalog, "sales", 3, prefix="m")
    old_files = [catalog.describe("sales")["snapshot"],
                 *catalog.describe("sales")["segments"]]

    report = catalog.compact("sales", mode="full")
    assert report["mode"] == "full"
    info = catalog.describe("sales")
    assert info["generation"] == 1
    assert info["snapshot"] == "sales.g1.cube"
    assert info["segments"] == [] and info["journal_offset"] == 0
    assert info["journal_bytes"] == 0 and info["format"] == "v2"
    for stale in old_files:
        assert not os.path.exists(os.path.join(catalog.directory, stale))

    reopened = CubeCatalog(catalog.directory).open("sales")
    rebuilt = CubeSession.from_rows(ROWS + extra + more, schema=SCHEMA).build()
    assert reopened.cube.same_cells(rebuilt.cube)


def test_compact_noop_when_nothing_pending(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    assert catalog.compact("sales")["mode"] == "none"
    assert catalog.compaction_stats() == {"incremental": 0, "full": 0}


def test_compact_incremental_refused_for_iceberg_cubes(catalog):
    session = CubeSession.from_rows(ROWS + ROWS, schema=SCHEMA).closed(min_sup=2)
    catalog.create("berg", session)
    catalog.append("berg", [("s1", "p1")])
    with pytest.raises(CatalogError, match="cannot compact incrementally"):
        catalog.compact("berg", mode="incremental")
    # mode="auto" falls back to a full rewrite instead.
    report = catalog.compact("berg")
    assert report["mode"] == "full"
    reopened = CubeCatalog(catalog.directory).open("berg")
    rebuilt = (
        CubeSession.from_rows(ROWS + ROWS + [("s1", "p1")], schema=SCHEMA)
        .closed(min_sup=2)
        .build()
    )
    assert reopened.cube.same_cells(rebuilt.cube)


def test_auto_compaction_escalates_to_full_past_the_segment_bound(tmp_path):
    """mode='auto' must not stack segments forever: past the bound it
    rewrites the base, resetting the chain."""
    catalog = CubeCatalog(str(tmp_path / "cubes"), auto_compact_ratio=None,
                          auto_compact_max_segments=2)
    catalog.create("sales", ROWS, schema=SCHEMA)
    rows = list(ROWS)
    for round_index in range(3):
        rows += _append_batches(catalog, "sales", 2, prefix=f"r{round_index}")
        report = catalog.compact("sales")
        expected = "incremental" if round_index < 2 else "full"
        assert report["mode"] == expected, (round_index, report)
    info = catalog.describe("sales")
    assert info["segments"] == [] and info["generation"] == 1
    reopened = CubeCatalog(catalog.directory).open("sales")
    rebuilt = CubeSession.from_rows(rows, schema=SCHEMA).build()
    assert reopened.cube.same_cells(rebuilt.cube)


def test_compact_unknown_mode_rejected(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(CatalogError, match="unknown compaction mode"):
        catalog.compact("sales", mode="sideways")


def test_auto_compaction_triggers_on_journal_growth(tmp_path):
    catalog = CubeCatalog(
        str(tmp_path / "cubes"),
        auto_compact_ratio=0.0001,
        auto_compact_min_bytes=1,
    )
    catalog.create("sales", ROWS, schema=SCHEMA)
    rows = _append_batches(catalog, "sales", 3)
    stats = catalog.compaction_stats()
    assert stats["incremental"] >= 1
    assert catalog.describe("sales")["pending_appends"] == 0
    reopened = CubeCatalog(catalog.directory).open("sales")
    rebuilt = CubeSession.from_rows(ROWS + rows, schema=SCHEMA).build()
    assert reopened.cube.same_cells(rebuilt.cube)


def test_auto_compaction_disabled_by_default_thresholds(catalog):
    """Tiny journals stay below auto_compact_min_bytes — no churn."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    _append_batches(catalog, "sales", 3)
    assert catalog.compaction_stats() == {"incremental": 0, "full": 0}
    assert catalog.describe("sales")["pending_appends"] == 3


def test_failed_compaction_rolls_the_manifest_back(catalog, monkeypatch):
    catalog.create("sales", ROWS, schema=SCHEMA)
    _append_batches(catalog, "sales", 2)
    before = catalog.describe("sales")

    from repro.storage.manifest import CatalogManifest

    def boom(self, directory):
        raise OSError("disk full")

    monkeypatch.setattr(CatalogManifest, "save", boom)
    with pytest.raises(OSError):
        catalog.compact("sales")
    monkeypatch.undo()

    after = catalog.describe("sales")
    assert after["segments"] == before["segments"] == []
    assert after["journal_offset"] == before["journal_offset"] == 0
    assert after["pending_appends"] == 2
    # The orphaned segment file was removed and the chain still replays.
    assert not any(".seg" in name for name in os.listdir(catalog.directory))
    reopened = CubeCatalog(catalog.directory).open("sales")
    assert reopened.relation.num_tuples == len(ROWS) + 2


def test_describe_reports_chain_metadata(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    info = catalog.describe("sales")
    assert info["format"] == "v2"
    assert info["generation"] == 0
    assert info["segments"] == []
    assert info["journal_offset"] == 0
    assert info["durable_bytes"] > 0
    assert info["journal_bytes"] == 0


# --------------------------------------------------------------------------- #
# Manifest format                                                              #
# --------------------------------------------------------------------------- #


def test_manifest_is_inspectable_json(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with open(os.path.join(catalog.directory, "catalog.json")) as handle:
        manifest = json.load(handle)
    assert manifest["version"] == 1
    assert "sales" in manifest["cubes"]
    assert manifest["cubes"]["sales"]["snapshot"] == "sales.cube"


def test_legacy_manifest_entries_still_load(catalog):
    """Manifests written before the v2/compaction fields existed default to
    the legacy meaning (format v1, no segments, whole journal pending)."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    path = os.path.join(catalog.directory, "catalog.json")
    with open(path) as handle:
        manifest = json.load(handle)
    for key in ("format", "generation", "segments", "journal_offset"):
        manifest["cubes"]["sales"].pop(key, None)
    with open(path, "w") as handle:
        json.dump(manifest, handle)
    reopened = CubeCatalog(catalog.directory)
    info = reopened.describe("sales")
    assert info["format"] == "v1" and info["segments"] == []
    assert info["pending_appends"] == 1  # offset defaults to 0: full replay
    assert reopened.open("sales").point({"store": "s9"}).count == 1


def test_manifest_rejects_unknown_versions(tmp_path):
    directory = str(tmp_path)
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        json.dump({"version": 99, "cubes": {}}, handle)
    with pytest.raises(CatalogError, match="version 99"):
        CatalogManifest.load(directory)


def test_manifest_rejects_non_manifest_files(tmp_path):
    directory = str(tmp_path)
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        handle.write('{"some": "json"}')
    with pytest.raises(CatalogError, match="not a catalog manifest"):
        CatalogManifest.load(directory)


def test_drop_deletes_the_cube_files(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    snapshot = os.path.join(catalog.directory, "sales.cube")
    appends = os.path.join(catalog.directory, "sales.appends.jsonl")
    assert os.path.exists(snapshot) and os.path.exists(appends)
    catalog.drop("sales")
    assert not os.path.exists(snapshot) and not os.path.exists(appends)


def test_two_cubes_are_independent(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.create("web", [("u1", "/a"), ("u2", "/b")], schema=["user", "path"])
    catalog.append("sales", [("s9", "p9")])
    assert catalog.open("web").point({"user": "u1"}).count == 1
    assert catalog.open("sales").point({"store": "s9"}).count == 1
    catalog.drop("web")
    assert catalog.list() == ["sales"]
