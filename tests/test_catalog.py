"""Tests for the multi-cube catalog (:mod:`repro.catalog`).

The load-bearing property is durability of the registry round trip: create →
save → reopen in a fresh catalog → append must land exactly where the
original process stood, including the appends that only ever hit the journal
(the per-cube append stream) and never a snapshot.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import CubeCatalog, CubeSession, Sum
from repro.core.errors import CatalogError
from repro.storage.manifest import (
    CatalogManifest,
    appends_filename,
    snapshot_filename,
    validate_cube_name,
)

ROWS = [
    ("s1", "p1"),
    ("s1", "p2"),
    ("s2", "p1"),
    ("s2", "p2"),
    ("s1", "p1"),
]
SCHEMA = ["store", "product"]


@pytest.fixture
def catalog(tmp_path):
    return CubeCatalog(str(tmp_path / "cubes"))


# --------------------------------------------------------------------------- #
# Registry operations                                                          #
# --------------------------------------------------------------------------- #


def test_create_open_list_drop(catalog):
    cube = catalog.create("sales", ROWS, schema=SCHEMA)
    assert catalog.list() == ["sales"]
    assert "sales" in catalog and len(catalog) == 1
    assert catalog.open("sales") is cube  # the live instance, not a reload
    catalog.drop("sales")
    assert catalog.list() == [] and "sales" not in catalog
    with pytest.raises(CatalogError):
        catalog.open("sales")


def test_create_writes_snapshot_immediately(catalog, tmp_path):
    catalog.create("sales", ROWS, schema=SCHEMA)
    assert os.path.exists(os.path.join(catalog.directory, "sales.cube"))
    # A fresh catalog over the same directory can serve without any save().
    reopened = CubeCatalog(catalog.directory)
    assert reopened.open("sales").point({"store": "s1"}).count == 3


def test_create_duplicate_name_rejected(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(CatalogError, match="already exists"):
        catalog.create("sales", ROWS, schema=SCHEMA)


@pytest.mark.parametrize("name", ["", ".hidden", "-flag", "a/b", "a b", "a\n"])
def test_invalid_cube_names_rejected(catalog, name):
    with pytest.raises(CatalogError, match="invalid cube name"):
        catalog.create(name, ROWS, schema=SCHEMA)


def test_validate_cube_name_accepts_sensible_names():
    for name in ("sales", "sales_2026", "a.b-c", "X"):
        assert validate_cube_name(name) == name
    assert snapshot_filename("sales") == "sales.cube"
    assert appends_filename("sales") == "sales.appends.jsonl"


def test_create_from_session_carries_configuration(catalog):
    rows = [("s1", "p1", 10.0), ("s1", "p2", 20.0), ("s2", "p1", 30.0)]
    session = (
        CubeSession.from_rows(
            rows, schema={"dimensions": SCHEMA, "measures": ["price"]}
        )
        .closed(min_sup=1)
        .measures(Sum("price"))
    )
    cube = catalog.create("priced", session)
    assert cube.point({"store": "s1"}).measure("sum(price)") == 30.0
    # The configuration survives the snapshot round trip.
    reloaded = CubeCatalog(catalog.directory).open("priced")
    assert reloaded.point({"store": "s1"}).measure("sum(price)") == 30.0


def test_build_into_registers_in_catalog(catalog):
    session = CubeSession.from_rows(ROWS, schema=SCHEMA).closed()
    cube = session.build_into(catalog, "sales")
    assert catalog.open("sales") is cube


def test_create_rejects_schema_override_for_built_sources(catalog):
    cube = CubeSession.from_rows(ROWS, schema=SCHEMA).build()
    with pytest.raises(CatalogError, match="schema cannot be overridden"):
        catalog.create("sales", cube, schema=["x", "y"])


def test_describe_reports_metadata(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    info = catalog.describe("sales")
    assert info["rows"] == len(ROWS)
    assert info["dimensions"] == SCHEMA
    assert info["loaded"] is True
    assert info["pending_appends"] == 0


# --------------------------------------------------------------------------- #
# The durability round trip                                                    #
# --------------------------------------------------------------------------- #


def test_round_trip_create_save_reopen_append(catalog):
    """The ISSUE's acceptance loop: create → save → reopen → append."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s3", "p1")])
    catalog.save("sales")

    reopened = CubeCatalog(catalog.directory)
    cube = reopened.open("sales")
    assert cube.point({"store": "s3"}).count == 1
    report = reopened.append("sales", [("s3", "p2"), ("s1", "p1")])
    assert report.appended_rows == 2
    assert cube.point({"store": "s3"}).count == 2
    assert cube.point({"store": "s1", "product": "p1"}).count == 3

    # Every answer matches a from-scratch rebuild over all the rows.
    all_rows = ROWS + [("s3", "p1"), ("s3", "p2"), ("s1", "p1")]
    rebuilt = CubeSession.from_rows(all_rows, schema=SCHEMA).build()
    assert cube.cube.same_cells(rebuilt.cube)


def test_unsaved_appends_replay_from_the_journal(catalog):
    """An append that never made it into a snapshot still survives reopen."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    # No save(): the snapshot on disk predates the append.
    reopened = CubeCatalog(catalog.directory)
    assert reopened.describe("sales")["pending_appends"] == 1
    assert reopened.open("sales").point({"store": "s9"}).count == 1


def test_save_truncates_the_journal(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    assert os.path.getsize(path) > 0
    catalog.save("sales")
    assert os.path.getsize(path) == 0
    assert catalog.describe("sales")["pending_appends"] == 0


def test_torn_journal_tail_is_tolerated(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.append("sales", [("s9", "p9")])
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    with open(path, "a") as stream:
        stream.write('{"rows": [["s8",')  # a crash mid-write
    cube = CubeCatalog(catalog.directory).open("sales")
    assert cube.point({"store": "s9"}).count == 1  # intact batch replayed
    assert cube.point({"store": "s8"}).count is None  # torn batch dropped


def test_corrupt_journal_middle_line_raises(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    with open(path, "w") as stream:
        stream.write("not json\n")
        stream.write(json.dumps({"rows": [["s9", "p9"]]}) + "\n")
    with pytest.raises(CatalogError, match="corrupt append stream"):
        CubeCatalog(catalog.directory).open("sales")


def test_failed_append_rolls_the_journal_back(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(Exception):
        catalog.append("sales", [("only-one-column",)])
    assert catalog.describe("sales")["pending_appends"] == 0
    # The journal stays replayable.
    assert CubeCatalog(catalog.directory).open("sales").point(
        {"store": "s1"}
    ).count == 3


def test_journal_rollback_preserves_later_records(catalog):
    """Undoing a failed append must not erase records journaled after it."""
    catalog.create("sales", ROWS, schema=SCHEMA)
    path = os.path.join(catalog.directory, "sales.appends.jsonl")
    mine = json.dumps({"rows": [["bad", "row"]]}) + "\n"
    theirs = json.dumps({"rows": [["s7", "p7"]]}) + "\n"
    with open(path, "w") as stream:
        stream.write(mine)
        stream.write(theirs)  # another thread landed after our journal write
    catalog._remove_journal_record(path, 0, mine)
    with open(path) as stream:
        assert stream.read() == theirs
    # Fast path: our record is still the tail -> plain truncate.
    with open(path, "a") as stream:
        offset = stream.tell()
        stream.write(mine)
    catalog._remove_journal_record(path, offset, mine)
    with open(path) as stream:
        assert stream.read() == theirs


def test_concurrent_good_and_bad_appends_keep_the_journal_exact(catalog):
    """Failed appends roll back without losing concurrent good batches."""
    import threading

    catalog.create("sales", ROWS, schema=SCHEMA)
    good_rows = [[(f"s{worker}", f"p{batch}")] for worker in range(3)
                 for batch in range(5)]
    failures = []

    def good_worker(batches):
        for batch in batches:
            catalog.append("sales", batch)

    def bad_worker():
        for _ in range(10):
            try:
                catalog.append("sales", [("only-one-column",)])
            except Exception:
                failures.append(1)

    threads = [
        threading.Thread(target=good_worker, args=(good_rows[i::3],))
        for i in range(3)
    ] + [threading.Thread(target=bad_worker) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert len(failures) == 20
    # Every good batch survived in the journal and replays on reopen.
    reopened = CubeCatalog(catalog.directory)
    assert reopened.describe("sales")["pending_appends"] == len(good_rows)
    cube = reopened.open("sales")
    all_rows = ROWS + [tuple(row) for batch in good_rows for row in batch]
    rebuilt = CubeSession.from_rows(all_rows, schema=SCHEMA).build()
    assert cube.cube.same_cells(rebuilt.cube)


def test_get_loaded_never_loads(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    reopened = CubeCatalog(catalog.directory)
    assert reopened.get_loaded("sales") is None  # on disk, not in memory
    cube = reopened.open("sales")
    assert reopened.get_loaded("sales") is cube
    assert reopened.get_loaded("ghost") is None


def test_non_json_rows_rejected_with_guidance(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with pytest.raises(CatalogError, match="JSON-serialisable"):
        catalog.append("sales", [(object(), "p1")])


def test_load_discards_the_in_memory_instance(catalog):
    cube = catalog.create("sales", ROWS, schema=SCHEMA)
    fresh = catalog.load("sales")
    assert fresh is not cube
    assert catalog.open("sales") is fresh


def test_mapping_rows_round_trip_through_the_journal(catalog):
    rows = [{"store": "s1", "product": "p1"}, {"store": "s2", "product": "p2"}]
    catalog.create("sales", rows, schema=SCHEMA)
    catalog.append("sales", [{"store": "s3", "product": "p3"}])
    reopened = CubeCatalog(catalog.directory).open("sales")
    assert reopened.point({"store": "s3"}).count == 1


def test_empty_append_is_a_noop_and_not_journaled(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    report = catalog.append("sales", [])
    assert report.mode == "no-op" and report.appended_rows == 0
    assert catalog.describe("sales")["pending_appends"] == 0


# --------------------------------------------------------------------------- #
# Manifest format                                                              #
# --------------------------------------------------------------------------- #


def test_manifest_is_inspectable_json(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    with open(os.path.join(catalog.directory, "catalog.json")) as handle:
        manifest = json.load(handle)
    assert manifest["version"] == 1
    assert "sales" in manifest["cubes"]
    assert manifest["cubes"]["sales"]["snapshot"] == "sales.cube"


def test_manifest_rejects_unknown_versions(tmp_path):
    directory = str(tmp_path)
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        json.dump({"version": 99, "cubes": {}}, handle)
    with pytest.raises(CatalogError, match="version 99"):
        CatalogManifest.load(directory)


def test_manifest_rejects_non_manifest_files(tmp_path):
    directory = str(tmp_path)
    with open(os.path.join(directory, "catalog.json"), "w") as handle:
        handle.write('{"some": "json"}')
    with pytest.raises(CatalogError, match="not a catalog manifest"):
        CatalogManifest.load(directory)


def test_drop_deletes_the_cube_files(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    snapshot = os.path.join(catalog.directory, "sales.cube")
    appends = os.path.join(catalog.directory, "sales.appends.jsonl")
    assert os.path.exists(snapshot) and os.path.exists(appends)
    catalog.drop("sales")
    assert not os.path.exists(snapshot) and not os.path.exists(appends)


def test_two_cubes_are_independent(catalog):
    catalog.create("sales", ROWS, schema=SCHEMA)
    catalog.create("web", [("u1", "/a"), ("u2", "/b")], schema=["user", "path"])
    catalog.append("sales", [("s9", "p9")])
    assert catalog.open("web").point({"user": "u1"}).count == 1
    assert catalog.open("sales").point({"store": "s9"}).count == 1
    catalog.drop("web")
    assert catalog.list() == ["sales"]
