"""Unit tests for the cell model (repro.core.cell)."""

from __future__ import annotations

import pytest

from repro.core.cell import (
    all_mask,
    apex_cell,
    cell_arity,
    cell_dimensions,
    cell_from_mapping,
    format_cell,
    is_specialisation,
    is_strict_specialisation,
    make_cell,
    merge_cells,
    project_cell,
    sort_key,
    tuple_matches,
)
from repro.core.errors import SchemaError


def test_make_cell_places_values_and_stars():
    assert make_cell(4, {0: 3, 2: 1}) == (3, None, 1, None)


def test_make_cell_rejects_out_of_range_dimensions():
    with pytest.raises(SchemaError):
        make_cell(2, {5: 1})


def test_cell_from_mapping_checks_arity():
    assert cell_from_mapping(3, [1, None, 2]) == (1, None, 2)
    with pytest.raises(SchemaError):
        cell_from_mapping(3, [1, None])


def test_apex_cell_is_all_stars():
    assert apex_cell(3) == (None, None, None)
    assert cell_arity(apex_cell(3)) == 0


def test_cell_dimensions_and_arity():
    cell = (5, None, 0, None)
    assert cell_dimensions(cell) == (0, 2)
    assert cell_arity(cell) == 2


def test_all_mask_matches_definition_8():
    # Example 3 of the paper: the All Mask of (*, *, 2, *, 1) is (1,1,0,1,0).
    cell = (None, None, 2, None, 1)
    mask = all_mask(cell)
    assert mask == 0b01011


def test_specialisation_order():
    general = (1, None, None)
    specific = (1, 2, None)
    assert is_specialisation(general, specific)
    assert not is_specialisation(specific, general)
    assert is_specialisation(general, general)
    assert is_strict_specialisation(general, specific)
    assert not is_strict_specialisation(general, general)


def test_specialisation_requires_equal_dimensionality():
    with pytest.raises(SchemaError):
        is_specialisation((1, None), (1, None, None))


def test_merge_cells_compatible_and_conflicting():
    assert merge_cells((1, None, 3), (None, 2, 3)) == (1, 2, 3)
    assert merge_cells((1, None), (2, None)) is None


def test_project_cell_keeps_selected_dimensions():
    assert project_cell((1, 2, 3), [0, 2]) == (1, None, 3)


def test_tuple_matches():
    assert tuple_matches((1, None, 3), (1, 7, 3))
    assert not tuple_matches((1, None, 3), (2, 7, 3))


def test_format_cell_with_and_without_names():
    assert format_cell((1, None)) == "(d0=1, d1=*)"
    assert format_cell((1, None), ["A", "B"]) == "(A=1, B=*)"
    decoded = format_cell((0, None), ["A", "B"], [{0: "x"}, {}])
    assert decoded == "(A=x, B=*)"


def test_sort_key_orders_by_arity_first():
    cells = [(1, 2), (None, None), (None, 2)]
    ordered = sorted(cells, key=sort_key)
    assert ordered[0] == (None, None)
    assert ordered[-1] == (1, 2)
