"""Tests for the gate checker's trajectory diff (``check_gates.py --diff``).

The diff is itself a gate (the nightly job fails on it), so its comparison
semantics — directionality, allowances, config mismatches, appearing and
disappearing gates — are pinned here rather than discovered in CI.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "benchmarks")
)

from check_gates import GATES, TRAJECTORY, diff_trajectories, main  # noqa: E402


def _trajectory(**overrides):
    """A minimal baseline covering the three comparison directions."""
    gates = {
        "bench_query_throughput": {
            "config": {"tuples": 100_000}, "speedup": 50.0,
        },
        "bench_api_overhead": {
            "config": {"tuples": 100_000}, "overhead": -0.70,
        },
        "bench_load_slo": {
            "config": {"tuples": 100_000, "rate": 150.0},
            "query_p99_ms": 130.0,
        },
    }
    gates.update(overrides)
    return {"schema": 1, "gates": gates}


def _verdicts(results):
    return {name: ok for name, ok, _ in results}


def test_every_gate_rule_has_a_trajectory_entry():
    assert set(TRAJECTORY) == set(GATES)


def test_identical_runs_pass():
    base = _trajectory()
    results = diff_trajectories(base, base, max_regression=0.25)
    assert results and all(ok for _, ok, _ in results)


def test_higher_is_better_fails_on_a_big_drop():
    base = _trajectory()
    slower = _trajectory(bench_query_throughput={
        "config": {"tuples": 100_000}, "speedup": 30.0,  # -40% vs 50x
    })
    verdicts = _verdicts(diff_trajectories(base, slower, max_regression=0.25))
    assert verdicts["bench_query_throughput"] is False
    # A 40% allowance tolerates the same drop.
    verdicts = _verdicts(diff_trajectories(base, slower, max_regression=0.45))
    assert verdicts["bench_query_throughput"] is True


def test_lower_is_better_uses_its_generous_latency_allowance():
    base = _trajectory()
    slower = _trajectory(bench_load_slo={
        "config": {"tuples": 100_000, "rate": 150.0},
        "query_p99_ms": 400.0,  # 3x the baseline: still inside the 3.0 slack
    })
    verdicts = _verdicts(diff_trajectories(base, slower, max_regression=0.25))
    assert verdicts["bench_load_slo"] is True
    way_slower = _trajectory(bench_load_slo={
        "config": {"tuples": 100_000, "rate": 150.0},
        "query_p99_ms": 600.0,  # past baseline * (1 + 3.0)
    })
    verdicts = _verdicts(diff_trajectories(base, way_slower, max_regression=0.25))
    assert verdicts["bench_load_slo"] is False


def test_delta_direction_compares_in_absolute_points():
    base = _trajectory()
    # -70% -> -67% overhead is a 3-point slide: inside the 5-point slack
    # even though it is a large *relative* change on a near-zero metric.
    drifted = _trajectory(bench_api_overhead={
        "config": {"tuples": 100_000}, "overhead": -0.67,
    })
    verdicts = _verdicts(diff_trajectories(base, drifted, max_regression=0.25))
    assert verdicts["bench_api_overhead"] is True
    worse = _trajectory(bench_api_overhead={
        "config": {"tuples": 100_000}, "overhead": -0.60,
    })
    verdicts = _verdicts(diff_trajectories(base, worse, max_regression=0.25))
    assert verdicts["bench_api_overhead"] is False


def test_config_mismatch_skips_instead_of_comparing():
    base = _trajectory()
    reduced = _trajectory(bench_query_throughput={
        "config": {"tuples": 20_000}, "speedup": 5.0,  # reduced-size run
    })
    results = diff_trajectories(base, reduced, max_regression=0.25)
    entry = {name: (ok, detail) for name, ok, detail in results}
    ok, detail = entry["bench_query_throughput"]
    assert ok is True and "not comparable" in detail


def test_missing_and_new_gates():
    base = _trajectory()
    current = _trajectory()
    del current["gates"]["bench_load_slo"]
    verdicts = _verdicts(diff_trajectories(base, current, max_regression=0.25))
    assert verdicts["bench_load_slo"] is False  # vanished gate = failure

    sparse_base = _trajectory()
    del sparse_base["gates"]["bench_load_slo"]
    results = diff_trajectories(sparse_base, _trajectory(), max_regression=0.25)
    entry = {name: (ok, detail) for name, ok, detail in results}
    ok, detail = entry["bench_load_slo"]
    assert ok is True and "no baseline" in detail


def test_malformed_entry_fails_its_gate_only():
    base = _trajectory()
    broken = _trajectory(bench_query_throughput={
        "config": {"tuples": 100_000},  # metric key missing entirely
    })
    verdicts = _verdicts(diff_trajectories(base, broken, max_regression=0.25))
    assert verdicts["bench_query_throughput"] is False
    assert verdicts["bench_load_slo"] is True


def test_cli_diff_path_end_to_end(tmp_path, capsys):
    report = {
        "benchmark": "bench_query_throughput",
        "config": {"tuples": 100_000},
        "passed": True,
        "speedup": 30.0,
        "min_speedup": 10.0,
    }
    report_path = tmp_path / "bench_query_throughput.json"
    report_path.write_text(json.dumps(report))
    baseline = {"schema": 1, "gates": {
        "bench_query_throughput": {
            "config": {"tuples": 100_000}, "speedup": 50.0,
        },
    }}
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))

    # 30x passes the absolute gate but regressed 40% vs the baseline.
    code = main([str(report_path), "--diff", str(baseline_path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "trajectory vs baseline" in out
    assert "FAIL  bench_query_throughput" in out

    code = main([
        str(report_path), "--diff", str(baseline_path),
        "--max-regression", "0.5",
    ])
    assert code == 0


def _rollup_report(**overrides):
    report = {
        "benchmark": "bench_rollup_router",
        "config": {"tuples": 100_000},
        "speedup": 8.0,
        "min_speedup": 5.0,
        "verified": True,
        "stale_reads": 0,
        "grains": 8,
    }
    report.update(overrides)
    report["passed"] = (
        report["speedup"] >= report["min_speedup"]
        and report["verified"]
        and report["stale_reads"] == 0
        and report["grains"] > 0
    )
    return report


def test_rollup_router_rule_gates_all_four_conditions():
    rule = GATES["bench_rollup_router"]
    assert rule(_rollup_report())[0] is True
    assert rule(_rollup_report(speedup=4.0))[0] is False
    assert rule(_rollup_report(verified=False))[0] is False
    assert rule(_rollup_report(stale_reads=2))[0] is False
    assert rule(_rollup_report(grains=0))[0] is False


def test_update_baseline_refuses_a_failing_run(tmp_path):
    report_path = tmp_path / "bench_rollup_router.json"
    baseline_path = tmp_path / "baseline.json"

    report_path.write_text(json.dumps(_rollup_report(speedup=4.0)))
    code = main([str(report_path), "--update-baseline", str(baseline_path)])
    assert code == 1
    assert not baseline_path.exists()

    report_path.write_text(json.dumps(_rollup_report()))
    code = main([str(report_path), "--update-baseline", str(baseline_path)])
    assert code == 0
    baseline = json.loads(baseline_path.read_text())
    assert baseline["passed"] is True
    assert baseline["gates"]["bench_rollup_router"]["speedup"] == 8.0


@pytest.mark.parametrize("name", sorted(TRAJECTORY))
def test_trajectory_metrics_exist_in_the_committed_baseline(name):
    """The committed baseline must actually contain what --diff reads."""
    path = os.path.join(
        os.path.dirname(os.path.dirname(__file__)),
        "benchmarks", "baselines", "bench-trajectory.json",
    )
    with open(path) as handle:
        baseline = json.load(handle)
    metric, direction, _ = TRAJECTORY[name]
    assert direction in ("higher", "lower", "delta")
    entry = baseline["gates"][name]
    float(entry[metric])
    assert isinstance(entry["config"], dict)
