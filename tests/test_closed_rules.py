"""Tests for closed-rule mining (Section 6.2)."""

from __future__ import annotations

import pytest

from repro import Relation
from repro.core.validate import reference_closed_cube
from repro.rules.closed_rules import (
    ClosedRule,
    compression_report,
    mine_closed_rules,
    minimal_generators,
    verify_rules,
)


@pytest.fixture
def dependent_relation():
    """A relation with the functional dependence A -> B."""
    rows = [
        (0, 0, 0),
        (0, 0, 1),
        (1, 1, 0),
        (1, 1, 1),
        (2, 0, 0),
        (2, 0, 1),
        (2, 0, 1),
    ]
    return Relation.from_rows(rows, ["A", "B", "C"])


def test_minimal_generators_of_a_dependent_cell(dependent_relation):
    closed = reference_closed_cube(dependent_relation, min_sup=1)
    # The cell (A=1, B=1, *) is closed; its count equals the count of (A=1, *, *),
    # so {A} is a minimal generator while {B} is not (B=1 only occurs with A=1 here,
    # so {B} is also a generator) — both must be found and both are minimal.
    cell = (1, 1, None)
    assert cell in closed
    generators = minimal_generators(dependent_relation, closed, cell)
    assert (0,) in generators or (1,) in generators
    assert all(len(generator) == 1 for generator in generators)


def test_mined_rules_hold_on_the_base_table(dependent_relation):
    closed = reference_closed_cube(dependent_relation, min_sup=1)
    rules = mine_closed_rules(dependent_relation, closed)
    assert rules
    verify_rules(dependent_relation, rules)
    # The dependence A=1 -> B=1 must be captured by some rule.
    assert any(
        ((0, 1),) == rule.condition and (1, 1) in rule.consequent for rule in rules
    )


def test_rules_are_deduplicated_across_cells(dependent_relation):
    closed = reference_closed_cube(dependent_relation, min_sup=1)
    rules = mine_closed_rules(dependent_relation, closed)
    assert len(rules) == len(set(rules))


def test_compression_report_counts(dependent_relation):
    closed = reference_closed_cube(dependent_relation, min_sup=1)
    rules = mine_closed_rules(dependent_relation, closed)
    report = compression_report(closed, rules)
    assert report["closed_cells"] == len(closed)
    assert report["closed_rules"] == len(rules)
    assert report["rules_per_cell"] == pytest.approx(len(rules) / len(closed))


def test_rule_formatting(dependent_relation):
    rule = ClosedRule(((0, 1),), ((1, 1),))
    assert rule.format() == "d0=1 -> d1=1"
    assert rule.format(dependent_relation) == "A=1 -> B=1"
    trivial = ClosedRule((), ((1, 1),))
    assert trivial.format().startswith("(true)")


def test_max_condition_arity_limits_search(dependent_relation):
    closed = reference_closed_cube(dependent_relation, min_sup=1)
    limited = mine_closed_rules(dependent_relation, closed, max_condition_arity=1)
    assert all(len(rule.condition) <= 1 for rule in limited)
