"""Tests for the aggregation-based closedness measure (repro.core.closedness).

These cover the paper's Definitions 6-9 and Lemmas 2-4: the Representative
Tuple ID behaves like a distributive ``min``, the Closed Mask merges
algebraically, and the combined closedness measure agrees with a direct
per-group check, regardless of how the group is split into parts.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation
from repro.core.cell import all_mask
from repro.core.closedness import (
    ClosednessState,
    closed_pruning_applies,
    closedness_of_tids,
    full_mask,
    merge_states,
    tree_mask_after_collapse,
)


def make_relation(rows):
    return Relation.from_rows(rows)


def brute_force_mask(relation, tids):
    """Closed Mask computed directly from the definition."""
    mask = 0
    for dim in range(relation.num_dimensions):
        values = {relation.value(tid, dim) for tid in tids}
        if len(values) == 1:
            mask |= 1 << dim
    return mask


def test_single_tuple_state_has_full_mask():
    relation = make_relation([(1, 2, 3)])
    state = ClosednessState.for_tuple(0, 3)
    assert state.closed_mask == full_mask(3)
    assert state.rep_tid == 0
    assert not state.is_empty


def test_empty_state_is_neutral_for_merge():
    relation = make_relation([(0, 1), (0, 2)])
    state = ClosednessState.for_tuple(1, 2)
    empty = ClosednessState.empty(2)
    state.merge(empty, relation)
    assert state.rep_tid == 1
    assert state.closed_mask == full_mask(2)
    empty.merge(state, relation)
    assert empty.rep_tid == 1
    assert empty.closed_mask == state.closed_mask


def test_add_tuple_clears_differing_dimensions():
    relation = make_relation([(0, 1, 2), (0, 9, 2), (0, 1, 7)])
    state = ClosednessState.for_tuple(0, 3)
    state.add_tuple(1, relation)
    assert state.closed_mask == 0b101  # dims 0 and 2 still shared
    state.add_tuple(2, relation)
    assert state.closed_mask == 0b001  # only dim 0 shared now
    assert state.rep_tid == 0


def test_representative_tuple_id_is_minimum():
    relation = make_relation([(0,), (0,), (1,)])
    state = closedness_of_tids([2, 1], relation)
    assert state.rep_tid == 1
    other = closedness_of_tids([0], relation)
    state.merge(other, relation)
    assert state.rep_tid == 0


def test_closedness_of_tids_matches_brute_force():
    rows = [(0, 1, 0), (0, 2, 0), (0, 1, 1), (1, 1, 0)]
    relation = make_relation(rows)
    for tids in ([0], [0, 1], [0, 1, 2], [0, 3], [0, 1, 2, 3]):
        state = closedness_of_tids(tids, relation)
        assert state.closed_mask == brute_force_mask(relation, tids)


def test_closedness_measure_definition_9():
    # Example 3: closed mask (1,0,1,0,0) & all mask of (*,*,2,*,1) -> bit 1 only.
    # Bit order here is dimension index = bit index.
    cell = (None, None, 2, None, 1)
    state = ClosednessState(rep_tid=0, closed_mask=0b00101)
    assert state.closedness(all_mask(cell)) == 0b00001
    assert not state.is_closed(all_mask(cell))
    closed_state = ClosednessState(rep_tid=0, closed_mask=0b10100)
    assert closed_state.is_closed(all_mask(cell))


def test_is_closed_for_uses_cell_all_mask():
    relation = make_relation([(0, 1), (0, 2)])
    state = closedness_of_tids([0, 1], relation)
    assert not state.is_closed_for((None, None))   # dim 0 shared but starred
    assert state.is_closed_for((0, None))          # the shared dim is fixed


def test_merge_order_independence_on_random_groups():
    rng = random.Random(11)
    rows = [tuple(rng.randint(0, 2) for _ in range(4)) for _ in range(30)]
    relation = make_relation(rows)
    tids = list(range(relation.num_tuples))
    expected = closedness_of_tids(tids, relation)
    for _trial in range(20):
        rng.shuffle(tids)
        cut_a, cut_b = sorted((rng.randint(0, len(tids)), rng.randint(0, len(tids))))
        parts = [tids[:cut_a], tids[cut_a:cut_b], tids[cut_b:]]
        states = [closedness_of_tids(part, relation) for part in parts]
        merged = merge_states(states, relation)
        assert merged.closed_mask == expected.closed_mask
        assert merged.rep_tid == expected.rep_tid


@settings(max_examples=60, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
        min_size=1,
        max_size=25,
    ),
    split=st.integers(0, 24),
)
def test_property_merge_equals_direct_computation(data, split):
    """Splitting a group arbitrarily and merging gives the direct-group state."""
    relation = make_relation(data)
    tids = list(range(relation.num_tuples))
    split = min(split, len(tids))
    left = closedness_of_tids(tids[:split], relation)
    right = closedness_of_tids(tids[split:], relation)
    left.merge(right, relation)
    direct = closedness_of_tids(tids, relation)
    assert left.closed_mask == direct.closed_mask
    assert left.rep_tid == direct.rep_tid


def test_tree_mask_helpers():
    mask = 0
    mask = tree_mask_after_collapse(mask, 2)
    assert mask == 0b100
    mask = tree_mask_after_collapse(mask, 0)
    assert mask == 0b101
    assert closed_pruning_applies(0b110, mask)
    assert not closed_pruning_applies(0b010, mask)
