"""The columnar backend seam and the vectorized kernels built on it.

Covers :mod:`repro.core.columns` (capability detection, backend pinning,
cached column views) and :mod:`repro.vector.kernels` — every kernel is
checked value-identical between the NumPy path and its per-tuple reference
on the same inputs, and the consumers that dispatch through them (the merge,
the query engine, the dense subspace) are checked cube-identical across
backends.  On an interpreter without NumPy the parametrized cases collapse
to the fallback, which still exercises every dispatch guard.
"""

from __future__ import annotations

import pytest

from repro import Relation
from repro.algorithms.base import CubingOptions, get_algorithm
from repro.core import columns as columns_mod
from repro.core.cell import sort_key
from repro.core.columns import (
    HAS_NUMPY,
    PYTHON_BACKEND,
    ColumnStore,
    column_store,
    get_backend,
    set_default_backend,
    use_backend,
)
from repro.core.measures import (
    AvgMeasure,
    CountMeasure,
    MaxMeasure,
    MeasureSet,
    MinMeasure,
    SumMeasure,
)
from repro.incremental.merge import merge_closed_cubes
from repro.query.engine import QueryEngine
from repro.vector import kernels

from conftest import BACKEND_NAMES, random_relation

requires_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")


def _measured_relation(seed: int, tuples: int = 120, dims: int = 4):
    """A relation with two integral measure columns (exact under any order)."""
    import random

    rng = random.Random(seed)
    num_dims = rng.randint(2, dims)
    rows = [
        tuple(rng.randint(0, 3) for _ in range(num_dims)) for _ in range(tuples)
    ]
    return Relation.from_rows(
        rows,
        measures={
            "m0": [float((tid * 7 + 3) % 23) for tid in range(tuples)],
            "m1": [float((tid * 5 + 1) % 17) for tid in range(tuples)],
        },
    )


def _measures() -> MeasureSet:
    return MeasureSet(
        [
            CountMeasure(),
            SumMeasure("m0"),
            MinMeasure("m0"),
            MaxMeasure("m1"),
            AvgMeasure("m1"),
        ]
    )


# --------------------------------------------------------------------------- #
# Backend selection                                                            #
# --------------------------------------------------------------------------- #


def test_default_backend_matches_capability():
    backend = get_backend()
    if HAS_NUMPY:
        assert backend.name == "numpy" and backend.vectorized
    else:
        assert backend.name == "python" and not backend.vectorized


def test_set_default_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown column backend"):
        set_default_backend("bogus")


def test_set_default_backend_rejects_numpy_when_absent(monkeypatch):
    monkeypatch.setattr(columns_mod, "NUMPY_BACKEND", None)
    with pytest.raises(ValueError, match="not importable"):
        set_default_backend("numpy")


def test_use_backend_restores_previous_even_on_error():
    before = get_backend()
    with use_backend("python"):
        assert get_backend() is PYTHON_BACKEND
    assert get_backend() is before
    with pytest.raises(RuntimeError):
        with use_backend("python"):
            raise RuntimeError("boom")
    assert get_backend() is before


def test_python_backend_arrays_are_typed():
    ints = PYTHON_BACKEND.int_array([3, 1, 2])
    floats = PYTHON_BACKEND.float_array([0.5, 1.5])
    assert list(ints) == [3, 1, 2] and ints.typecode == "q"
    assert list(floats) == [0.5, 1.5] and floats.typecode == "d"


# --------------------------------------------------------------------------- #
# ColumnStore                                                                  #
# --------------------------------------------------------------------------- #


def test_column_store_fallback_returns_the_relation_lists():
    relation = _measured_relation(3)
    store = ColumnStore(relation, PYTHON_BACKEND)
    assert store.dimension(0) is relation.columns[0]
    assert store.measure(0) is relation.measure_columns[0]


@requires_numpy
def test_column_store_caches_and_invalidates_on_append():
    relation = Relation.from_rows([(0, 1), (1, 1), (2, 0)])
    store = column_store(relation)
    view = store.dimension(0)
    assert store.dimension(0) is view  # cached while the length matches
    relation.append_rows([(3, 2)])
    grown = store.dimension(0)
    assert grown is not view and len(grown) == 4 and int(grown[3]) == 3


@requires_numpy
def test_column_store_swaps_with_the_backend():
    relation = Relation.from_rows([(0, 1), (1, 0)])
    fast = column_store(relation)
    assert fast.backend.vectorized
    with use_backend("python"):
        slow = column_store(relation)
        assert slow is not fast and not slow.backend.vectorized
    assert column_store(relation) is not slow


# --------------------------------------------------------------------------- #
# Kernel parity: vector path == per-tuple reference                            #
# --------------------------------------------------------------------------- #


def test_aggregate_measures_matches_reference(column_backend):
    relation = _measured_relation(11)
    measures = _measures()
    for tids in (
        range(relation.num_tuples),
        list(range(0, relation.num_tuples, 2)),
        [0],
    ):
        assert kernels.aggregate_measures(measures, relation, tids) == (
            kernels.aggregate_measures_python(measures, relation, tids)
        )


@requires_numpy
def test_lexsort_runs_finds_every_group_boundary():
    import numpy as np

    keys = [np.asarray([1, 0, 1, 0, 1], dtype=np.int64),
            np.asarray([0, 2, 0, 2, 1], dtype=np.int64)]
    order, starts = kernels.lexsort_runs(keys)
    sorted_rows = [(int(keys[0][i]), int(keys[1][i])) for i in order.tolist()]
    assert sorted_rows == sorted(sorted_rows)
    boundaries = [i for i in range(len(sorted_rows))
                  if i == 0 or sorted_rows[i] != sorted_rows[i - 1]]
    assert starts.tolist() == boundaries


def test_grouped_closed_aggregate_matches_reference(column_backend):
    relation = _measured_relation(17, tuples=150)
    measures = _measures()
    tids = list(range(relation.num_tuples))
    keys = [relation.columns[d] for d in range(min(2, relation.num_dimensions))]
    for track in (True, False):
        fast = kernels.grouped_closed_aggregate(relation, tids, keys, measures, track)
        ref = kernels.grouped_closed_aggregate_python(
            relation, tids, keys, measures, track
        )
        assert fast == ref


def test_grouped_closed_aggregate_without_measures(column_backend):
    relation = _measured_relation(19, tuples=100)
    empty = MeasureSet()
    tids = list(range(relation.num_tuples))
    keys = [relation.columns[0]]
    assert kernels.grouped_closed_aggregate(relation, tids, keys, empty, True) == (
        kernels.grouped_closed_aggregate_python(relation, tids, keys, empty, True)
    )


def test_states_from_row_reconstructs_exact_states():
    measures = _measures()
    relation = _measured_relation(23, tuples=60)
    tids = list(range(relation.num_tuples))
    states = measures.create_states(relation, tids[0])
    for tid in tids[1:]:
        measures.merge_states(states, measures.create_states(relation, tid))
    grouped = kernels.grouped_closed_aggregate_python(
        relation, tids, [[0] * len(tids)], measures, False
    )
    ((_, (count, _rep, _mask, row)),) = grouped.items()
    rebuilt = kernels.states_from_row(measures, row, count)
    assert measures.values(rebuilt) == measures.values(states)


def _closed_pairs(relation, measures, count: int):
    result = get_algorithm(
        "qcdfs", CubingOptions(min_sup=1, closed=True, measures=measures)
    ).run(relation)
    cells = sorted(result.cube.items(), key=lambda item: sort_key(item[0]))
    pairs = []
    for i in range(count):
        base_cell, base_stats = cells[(i * 13) % len(cells)]
        delta_cell, delta_stats = cells[(i * 7 + 3) % len(cells)]
        pairs.append(
            (base_cell, base_stats.count, dict(base_stats.measures),
             base_stats.rep_tid, delta_cell, delta_stats.count,
             dict(delta_stats.measures), delta_stats.rep_tid)
        )
    return pairs


def test_repair_pairs_matches_reference(column_backend):
    relation = _measured_relation(29, tuples=90)
    measures = _measures()
    pairs = _closed_pairs(relation, measures, 64)
    assert kernels.repair_pairs(pairs, relation, measures) == (
        kernels.repair_pairs_python(pairs, relation, measures)
    )
    # Below the dispatch threshold both names are the reference path.
    small = pairs[: kernels.MIN_REPAIR_PAIRS - 1]
    assert kernels.repair_pairs(small, relation, measures) == (
        kernels.repair_pairs_python(small, relation, measures)
    )


# --------------------------------------------------------------------------- #
# Cross-backend equality of the kernel consumers                               #
# --------------------------------------------------------------------------- #


def _cube_snapshot(cube):
    return {
        cell: (stats.count, stats.rep_tid, dict(stats.measures))
        for cell, stats in cube.items()
    }


@requires_numpy
@pytest.mark.parametrize(
    "algorithm,with_measures",
    [("c-cubing-mm", True), ("qc-dfs", True), ("c-cubing-star", False)],
)
def test_closed_cubes_identical_across_backends(algorithm, with_measures):
    relation = _measured_relation(31, tuples=140)
    options = CubingOptions(
        min_sup=1, closed=True,
        measures=_measures() if with_measures else MeasureSet(),
    )
    snapshots = {}
    for backend in BACKEND_NAMES:
        with use_backend(backend):
            cube = get_algorithm(algorithm, options).run(relation).cube
            snapshots[backend] = _cube_snapshot(cube)
    assert snapshots["numpy"] == snapshots["python"]


@requires_numpy
def test_merge_identical_across_backends_including_measures():
    measures = _measures()
    combined = _measured_relation(37, tuples=160)
    split = combined.num_tuples * 3 // 4
    base_rel = combined.select(range(split))
    options = CubingOptions(min_sup=1, closed=True, measures=measures)
    snapshots = {}
    for backend in BACKEND_NAMES:
        with use_backend(backend):
            base = get_algorithm("qcdfs", options).run(base_rel).cube
            delta = (
                get_algorithm("qcdfs", options).run_delta(combined, split).cube
            )
            report = merge_closed_cubes(base, delta, combined, measures=measures)
            snapshots[backend] = (
                _cube_snapshot(base),
                sorted(report.added, key=sort_key),
                sorted(report.updated, key=sort_key),
            )
    assert snapshots["numpy"] == snapshots["python"]
    oracle = get_algorithm("qcdfs", options).run(combined).cube
    assert snapshots["numpy"][0] == _cube_snapshot(oracle)


@requires_numpy
def test_slice_answers_identical_across_backends():
    relation = _measured_relation(41, tuples=200)
    cube = get_algorithm(
        "qcdfs", CubingOptions(min_sup=1, closed=True, measures=_measures())
    ).run(relation).cube
    group_by = [0, 1]
    slices = [({}, group_by), ({0: relation.columns[0][0]}, [1])]
    answers = {}
    for backend in BACKEND_NAMES:
        with use_backend(backend):
            engine = QueryEngine(cube)  # fresh engine: no cross-backend cache
            answers[backend] = [
                [
                    (a.cell, a.count, a.measures, a.closure)
                    for a in engine.slice(fixed, dims)
                ]
                for fixed, dims in slices
            ]
    assert answers["numpy"] == answers["python"]
    # Every slice answer resolves to its closure's statistics.
    for per_slice in answers["numpy"]:
        for cell, count, _measure_row, closure in per_slice:
            assert closure is not None and cube[closure].count == count


# --------------------------------------------------------------------------- #
# Chunked merge batching                                                       #
# --------------------------------------------------------------------------- #


def test_chunked_merge_yields_and_matches_unbatched():
    measures = _measures()
    combined = _measured_relation(43, tuples=150)
    split = combined.num_tuples * 2 // 3
    base_rel = combined.select(range(split))
    options = CubingOptions(min_sup=1, closed=True, measures=measures)

    def build_base():
        return get_algorithm("qcdfs", options).run(base_rel).cube

    delta = get_algorithm("qcdfs", options).run_delta(combined, split).cube
    plain = build_base()
    merge_closed_cubes(plain, delta, combined, measures=measures)

    yields = 0

    def on_yield():
        nonlocal yields
        yields += 1

    chunked = build_base()
    report = merge_closed_cubes(
        chunked, delta, combined, measures=measures,
        batch_size=16, yield_between_batches=on_yield,
    )
    assert yields >= report.candidates // 16 - 1
    assert _cube_snapshot(chunked) == _cube_snapshot(plain)


def test_chunked_merge_batch_size_does_not_change_the_report():
    measures = _measures()
    combined = _measured_relation(47, tuples=120)
    split = combined.num_tuples // 2
    base_rel = combined.select(range(split))
    options = CubingOptions(min_sup=1, closed=True, measures=measures)
    delta = get_algorithm("qcdfs", options).run_delta(combined, split).cube
    outcomes = []
    for batch_size in (None, 1, 7, 10_000):
        base = get_algorithm("qcdfs", options).run(base_rel).cube
        report = merge_closed_cubes(
            base, delta, combined, measures=measures, batch_size=batch_size
        )
        outcomes.append(
            (_cube_snapshot(base), report.added, report.updated)
        )
    assert all(outcome == outcomes[0] for outcome in outcomes[1:])
