"""Concurrency tests: RWLock, cache generations, and torn-read freedom.

The load-bearing property (the ISSUE's acceptance criterion) is
*prefix-consistency*: with appends and queries running in parallel threads
under copy-on-publish maintenance, every answer must equal the answer of
some published cube version — the cube after 0, 1, ..., k appends — and a
version-pinned read must equal exactly its version's answer.  A torn read
(a count matching no version) or a stale cache entry (a pinned mismatch)
fails the test.  Everything else here exercises the primitives that make
the property hold: the reader-writer lock, the cache's generation fencing,
the index's mutation counter, and the explicit empty-append no-ops.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro import CubeSession, Relation
from repro.concurrency import RWLock
from repro.query.cache import LRUCache
from repro.query.index import CubeIndex


# --------------------------------------------------------------------------- #
# RWLock                                                                       #
# --------------------------------------------------------------------------- #


def test_rwlock_allows_concurrent_readers():
    lock = RWLock()
    inside = threading.Barrier(3, timeout=5)

    def reader():
        with lock.read():
            inside.wait()  # all three readers hold the lock at once

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5)
    assert not any(thread.is_alive() for thread in threads)


def test_rwlock_writer_is_exclusive():
    lock = RWLock()
    counter = {"value": 0, "max_seen": 0}

    def writer():
        for _ in range(200):
            with lock.write():
                counter["value"] += 1
                counter["max_seen"] = max(counter["max_seen"], counter["value"])
                counter["value"] -= 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
    assert counter["max_seen"] == 1  # never two writers inside


def test_rwlock_writer_preference_blocks_new_readers():
    lock = RWLock()
    order = []
    reader_entered = threading.Event()
    release_first_reader = threading.Event()

    def first_reader():
        with lock.read():
            reader_entered.set()
            release_first_reader.wait(timeout=5)
        order.append("reader1-out")

    def writer():
        reader_entered.wait(timeout=5)
        with lock.write():
            order.append("writer")

    def late_reader():
        # Starts while the writer is queued: must wait behind it.
        with lock.read():
            order.append("reader2")

    t1 = threading.Thread(target=first_reader)
    t2 = threading.Thread(target=writer)
    t1.start()
    reader_entered.wait(timeout=5)
    t2.start()
    time.sleep(0.05)  # let the writer queue up
    t3 = threading.Thread(target=late_reader)
    t3.start()
    time.sleep(0.05)
    release_first_reader.set()
    for thread in (t1, t2, t3):
        thread.join(timeout=5)
    assert order.index("writer") < order.index("reader2")


def test_rwlock_release_without_acquire_raises():
    lock = RWLock()
    with pytest.raises(RuntimeError):
        lock.release_read()
    with pytest.raises(RuntimeError):
        lock.release_write()


# --------------------------------------------------------------------------- #
# LRUCache generations                                                         #
# --------------------------------------------------------------------------- #


def test_put_if_generation_drops_stale_writes():
    cache: LRUCache = LRUCache(8)
    generation = cache.generation
    cache.clear()  # an invalidation in between
    assert cache.put_if_generation("key", "stale", generation) is False
    assert cache.get("key") is None
    assert cache.put_if_generation("key", "fresh", cache.generation) is True
    assert cache.get("key") == "fresh"


def test_discard_and_clear_advance_the_generation():
    cache: LRUCache = LRUCache(8)
    cache.put("a", 1)
    before = cache.generation
    assert cache.discard("a") is True
    assert cache.generation == before + 1
    cache.clear()
    assert cache.generation == before + 2
    assert cache.discard("missing") is False
    assert cache.generation == before + 2  # a no-op discard does not bump


def test_bump_generation_fences_without_dropping_entries():
    cache: LRUCache = LRUCache(8)
    cache.put("a", 1)
    generation = cache.generation
    cache.bump_generation()
    assert cache.get("a") == 1  # entries survive
    assert cache.put_if_generation("b", 2, generation) is False  # writers fenced


def test_put_if_generation_respects_capacity_and_eviction():
    cache: LRUCache = LRUCache(2)
    generation = cache.generation
    for key in ("a", "b", "c"):
        assert cache.put_if_generation(key, key, generation) is True
    assert len(cache) == 2 and cache.stats()["evictions"] == 1
    disabled: LRUCache = LRUCache(0)
    assert disabled.put_if_generation("a", 1, disabled.generation) is False


def test_stats_snapshot_is_consistent_under_hammering():
    cache: LRUCache = LRUCache(64)
    stop = threading.Event()
    failures = []

    def hammer(seed: int) -> None:
        rng = random.Random(seed)
        while not stop.is_set():
            key = rng.randrange(256)
            if rng.random() < 0.5:
                cache.put(key, key)
            else:
                cache.get(key)
            if rng.random() < 0.02:
                cache.discard(key)

    def watch() -> None:
        while not stop.is_set():
            stats = cache.stats()
            if stats["entries"] > stats["capacity"]:
                failures.append(stats)

    threads = [threading.Thread(target=hammer, args=(seed,)) for seed in range(4)]
    threads.append(threading.Thread(target=watch))
    for thread in threads:
        thread.start()
    time.sleep(0.4)
    stop.set()
    for thread in threads:
        thread.join(timeout=5)
    assert not failures, f"cache exceeded capacity under concurrency: {failures[:3]}"
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] > 0
    assert 0.0 <= stats["hit_rate"] <= 1.0


# --------------------------------------------------------------------------- #
# CubeIndex mutation generation                                                #
# --------------------------------------------------------------------------- #


def test_cube_index_mutations_bump_generation():
    relation = Relation.from_rows([(0, 0), (0, 1), (1, 0)])
    cube = CubeSession.from_relation(relation).build().cube
    index = CubeIndex.from_cube(cube)
    built = index.generation
    assert built >= 1  # the initial build counts as one mutation
    from repro.core.cube import CellStats

    index.add_cells([((9, 9), CellStats(1))])
    assert index.generation == built + 1
    index.touch_cell((9, 9))
    assert index.generation == built + 2
    index.remove_cells([(9, 9)])
    assert index.generation == built + 3


# --------------------------------------------------------------------------- #
# Explicit empty-append no-ops                                                 #
# --------------------------------------------------------------------------- #


def test_serving_cube_empty_append_is_explicit_noop():
    cube = CubeSession.from_rows([("a", "b"), ("a", "c")], schema=["X", "Y"]).build()
    version = cube.version
    report = cube.append([])
    assert report.mode == "no-op"
    assert report.appended_rows == 0
    assert report.elapsed_seconds == 0.0
    assert cube.version == version  # no publish happened


def test_relation_empty_append_rows_is_noop():
    relation = Relation.from_rows([(0, 1)])
    assert relation.append_rows([]) == (1, 1)
    assert relation.num_tuples == 1
    # No measure validation either: the schema has none, and none are passed.
    priced = Relation.from_rows([(0,)], measures={"m": [1.0]})
    assert priced.append_rows([]) == (1, 1)


# --------------------------------------------------------------------------- #
# Versioned reads (CubeView)                                                   #
# --------------------------------------------------------------------------- #


def test_read_snapshot_pins_a_version_across_publishes():
    rows = [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
    cube = CubeSession.from_rows(rows, schema=["A", "B"]).build()
    view = cube.read_snapshot()
    assert view.version == 0
    cube.append([("a3", "b3")], copy_on_publish=True)
    assert cube.version == 1
    assert cube.point({"A": "a3"}).count == 1        # latest sees the append
    assert view.point({"A": "a3"}).count is None      # the pin does not
    assert view.point({"A": "a1"}).count == 2
    assert len(view) != 0
    fresh = cube.read_snapshot()
    assert fresh.version == 1
    assert fresh.point({"A": "a3"}).count == 1
    # Slices and roll-ups answer at the pinned version too.
    assert {a.coordinates_dict()["A"] for a in fresh.rollup(["A"])} == {
        "a1", "a2", "a3"
    }
    assert {a.coordinates_dict()["A"] for a in view.rollup(["A"])} == {"a1", "a2"}


# --------------------------------------------------------------------------- #
# The interleaving property                                                    #
# --------------------------------------------------------------------------- #


DIMS = ["A", "B", "C"]


def _random_row(rng: random.Random):
    return tuple(f"{dim.lower()}{rng.randrange(4)}" for dim in DIMS)


def _spec_key(spec) -> tuple:
    return tuple(sorted(spec.items()))


def _rollup_key(answers) -> tuple:
    return tuple(
        sorted((tuple(sorted(a.coordinates)), a.count) for a in answers)
    )


@pytest.mark.parametrize("seed", [3, 11])
def test_concurrent_appends_and_queries_prefix_consistent(seed):
    """Concurrent append / point / rollup workers; zero torn reads."""
    rng = random.Random(seed)
    base = [_random_row(rng) for _ in range(50)]
    batches = [[_random_row(rng) for _ in range(8)] for _ in range(5)]

    # The query workload: the apex, every single-dimension value, and a few
    # two-dimensional cells — materialised or not.
    point_specs = [{}]
    for dim in DIMS:
        point_specs.extend({dim: f"{dim.lower()}{i}"} for i in range(4))
    point_specs.extend(
        {"A": f"a{rng.randrange(4)}", "C": f"c{rng.randrange(4)}"}
        for _ in range(6)
    )
    rollup_dims = [["A"], ["B"], ["A", "C"]]

    # Ground truth per version: a from-scratch rebuild over each prefix.
    prefix = list(base)
    expected_points = []
    expected_rollups = []
    prefix_cubes = [CubeSession.from_rows(list(prefix), schema=DIMS).build()]
    for batch in batches:
        prefix.extend(batch)
        prefix_cubes.append(CubeSession.from_rows(list(prefix), schema=DIMS).build())
    for reference in prefix_cubes:
        expected_points.append(
            {_spec_key(s): reference.point(s).count for s in point_specs}
        )
        expected_rollups.append(
            {tuple(d): _rollup_key(reference.rollup(d)) for d in rollup_dims}
        )
    num_versions = len(prefix_cubes)

    serving = CubeSession.from_rows(base, schema=DIMS).build()
    errors = []
    done = threading.Event()

    def point_worker(worker_seed: int) -> None:
        worker_rng = random.Random(worker_seed)
        while not done.is_set():
            spec = worker_rng.choice(point_specs)
            key = _spec_key(spec)
            # Pinned read: must match its version exactly.
            view = serving.read_snapshot()
            count = view.point(spec).count
            if count != expected_points[view.version][key]:
                errors.append(
                    ("pinned-point", spec, view.version, count,
                     expected_points[view.version][key])
                )
            # Latest read: must match *some* version (no torn state).
            count = serving.point(spec).count
            if count not in {
                expected_points[v][key] for v in range(num_versions)
            }:
                errors.append(("torn-point", spec, count))

    def rollup_worker(worker_seed: int) -> None:
        worker_rng = random.Random(worker_seed)
        while not done.is_set():
            dims = worker_rng.choice(rollup_dims)
            observed = _rollup_key(serving.rollup(dims))
            if observed not in {
                expected_rollups[v][tuple(dims)] for v in range(num_versions)
            }:
                errors.append(("torn-rollup", dims, observed))

    workers = [
        threading.Thread(target=point_worker, args=(seed * 100 + i,))
        for i in range(3)
    ] + [threading.Thread(target=rollup_worker, args=(seed * 200,))]
    for worker in workers:
        worker.start()
    try:
        for batch in batches:
            report = serving.append(batch, copy_on_publish=True)
            assert report.appended_rows == len(batch)
            time.sleep(0.02)  # let queries interleave between publishes
        time.sleep(0.05)
    finally:
        done.set()
        for worker in workers:
            worker.join(timeout=10)

    assert not errors, f"{len(errors)} inconsistent answers, e.g. {errors[:5]}"
    assert serving.version == len(batches)
    # The final state equals a from-scratch rebuild (exactness under fire).
    assert serving.cube.same_cells(prefix_cubes[-1].cube)


# --------------------------------------------------------------------------- #
# Executor offload (thread and process pools)                                  #
# --------------------------------------------------------------------------- #


def _executor_workload(seed: int = 23):
    rng = random.Random(seed)
    base = [_random_row(rng) for _ in range(40)]
    batches = [[_random_row(rng) for _ in range(6)] for _ in range(3)]
    return base, batches


def _assert_appends_exact(serving, base, batches, reports):
    assert all(report.mode == "delta-merge" for report in reports)
    rebuilt = CubeSession.from_rows(
        base + [row for batch in batches for row in batch], schema=DIMS
    ).build()
    assert serving.cube.same_cells(rebuilt.cube)
    assert serving.version == len(batches)


def test_thread_executor_prepares_merges_remotely():
    from concurrent.futures import ThreadPoolExecutor

    base, batches = _executor_workload()
    serving = CubeSession.from_rows(base, schema=DIMS).build()
    with ThreadPoolExecutor(2) as pool:
        reports = [
            serving.append(batch, copy_on_publish=True, executor=pool)
            for batch in batches
        ]
    _assert_appends_exact(serving, base, batches, reports)
    # Queries after the publishes see the merged state.
    last = batches[-1][-1]
    assert serving.point(dict(zip(DIMS, last))).found


def test_process_pool_prepares_merges_remotely():
    """The spawn pool: the append's CPU work really leaves the process."""
    from repro.incremental.parallel import create_refresh_pool

    base, batches = _executor_workload(29)
    serving = CubeSession.from_rows(base, schema=DIMS).build()
    pool = create_refresh_pool(1)
    try:
        reports = [
            serving.append(batch, copy_on_publish=True, executor=pool)
            for batch in batches
        ]
    finally:
        pool.shutdown()
    _assert_appends_exact(serving, base, batches, reports)


def test_broken_executor_falls_back_to_in_process():
    class ExplodingExecutor:
        def submit(self, *args, **kwargs):
            raise RuntimeError("pool is gone")

    base, batches = _executor_workload(31)
    serving = CubeSession.from_rows(base, schema=DIMS).build()
    reports = [
        serving.append(batch, copy_on_publish=True, executor=ExplodingExecutor())
        for batch in batches
    ]
    _assert_appends_exact(serving, base, batches, reports)


def test_partitioned_refresh_uses_the_executor():
    from concurrent.futures import ThreadPoolExecutor

    rng = random.Random(37)
    base = [_random_row(rng) for _ in range(40)]
    batch = [_random_row(rng) for _ in range(8)]
    serving = (
        CubeSession.from_rows(base, schema=DIMS).partitioned("A").build()
    )
    with ThreadPoolExecutor(2) as pool:
        report = serving.append(batch, copy_on_publish=True, executor=pool)
    assert report.mode == "partition-refresh"
    assert serving.version == 1
    rebuilt = CubeSession.from_rows(base + batch, schema=DIMS).partitioned("A").build()
    assert serving.cube.same_cells(rebuilt.cube)


def test_concurrent_async_appends_apply_in_order():
    rng = random.Random(5)
    base = [_random_row(rng) for _ in range(30)]
    batches = [[_random_row(rng) for _ in range(5)] for _ in range(4)]
    serving = CubeSession.from_rows(base, schema=DIMS).build()
    futures = [serving.append_async(batch) for batch in batches]
    reports = [future.result(timeout=30) for future in futures]
    assert all(report.appended_rows == 5 for report in reports)
    assert serving.version == len(batches)
    rebuilt = CubeSession.from_rows(
        base + [row for batch in batches for row in batch], schema=DIMS
    ).build()
    assert serving.cube.same_cells(rebuilt.cube)


# --------------------------------------------------------------------------- #
# Worker-resident merge state                                                  #
# --------------------------------------------------------------------------- #


def test_worker_cache_evicts_oldest_and_clears():
    from repro.incremental import parallel

    parallel.worker_cache_clear()
    try:
        for token in range(parallel.WORKER_CACHE_MAX + 2):
            parallel.worker_cache_store((token, 10), [])
        # The two oldest entries fell out; the newest survive.
        assert parallel.worker_cache_get((0, 10)) is None
        assert parallel.worker_cache_get((1, 10)) is None
        assert parallel.worker_cache_get((2, 10)) == []
        # A get refreshes recency: key 2 now outlives younger untouched keys.
        parallel.worker_cache_store((90, 10), [])
        parallel.worker_cache_store((91, 10), [])
        assert parallel.worker_cache_get((2, 10)) == []
        assert parallel.worker_cache_get((3, 10)) is None
    finally:
        parallel.worker_cache_clear()
    assert parallel.worker_cache_get((2, 10)) is None


def test_merge_task_without_resident_state_raises_cache_miss():
    from repro.incremental import parallel

    parallel.worker_cache_clear()
    relation = Relation.from_rows([("a", "b", "c")], DIMS)
    task = parallel.MergeTask(
        base_cells=None,
        relation=relation,
        start_tid=0,
        algorithm="qcdfs",
        cache_key=(999, 0),
    )
    with pytest.raises(parallel.WorkerCacheMiss) as excinfo:
        parallel.run_merge_task(task)
    assert excinfo.value.cache_key == (999, 0)


def test_thread_executor_appends_prime_and_reuse_worker_state():
    """Warm appends ship delta-only; a cleared cache recovers via retry."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.incremental import parallel

    parallel.worker_cache_clear()
    base, batches = _executor_workload(41)
    serving = CubeSession.from_rows(base, schema=DIMS).build()
    with ThreadPoolExecutor(1) as pool:
        reports = [serving.append(batches[0], copy_on_publish=True, executor=pool)]
        # The cold append retained the post-merge cube in the (in-process)
        # worker cache and left the hint pointing at it.
        token = serving._merge_state_token
        hint = serving._merge_state_hint
        assert hint == (token, serving.relation.num_tuples)
        assert parallel.worker_cache_get(hint) is not None
        # Warm append: the resident state answers the delta-only payload.
        reports.append(
            serving.append(batches[1], copy_on_publish=True, executor=pool)
        )
        assert serving._merge_state_hint == (token, serving.relation.num_tuples)
        # Evict everything: the delta-only attempt misses and the maintainer
        # retries with the full cell list — exactness is never at stake.
        parallel.worker_cache_clear()
        reports.append(
            serving.append(batches[2], copy_on_publish=True, executor=pool)
        )
    _assert_appends_exact(serving, base, batches, reports)
    parallel.worker_cache_clear()
