"""Tests for CubeResult (repro.core.cube)."""

from __future__ import annotations

import pytest

from repro import Relation
from repro.core.cube import BYTES_PER_COUNT, BYTES_PER_DIM, CubeResult, count_matching_tuples
from repro.core.errors import ValidationError


def build_cube():
    cube = CubeResult(2, name="test")
    cube.add((None, None), 4)
    cube.add((0, None), 3)
    cube.add((0, 1), 2, measures={"sum(m)": 5.0})
    return cube


def test_add_and_lookup():
    cube = build_cube()
    assert len(cube) == 3
    assert (0, 1) in cube
    assert cube[(0, 1)].count == 2
    assert cube.count_of((0, None)) == 3
    assert cube.count_of((1, 1)) is None
    assert cube.get((9, 9)) is None


def test_add_rejects_wrong_arity_and_duplicates():
    cube = CubeResult(2)
    with pytest.raises(ValidationError):
        cube.add((1,), 1)
    cube.add((1, None), 1)
    with pytest.raises(ValidationError):
        cube.add((1, None), 1)


def test_same_cells_and_diff():
    first = build_cube()
    second = build_cube()
    assert first.same_cells(second)
    third = CubeResult(2)
    third.add((None, None), 4)
    assert not first.same_cells(third)
    report = first.diff(third)
    assert "missing" in report
    assert first.diff(first) != ""  # always returns some text
    assert "no differences" in first.diff(second)


def test_closure_query_answers_covered_cells():
    # Closed cube of a table where (0, *) is covered by (0, 1).
    cube = CubeResult(2)
    cube.add((None, None), 3)
    cube.add((0, 1), 2)
    answer = cube.closure_query((0, None))
    assert answer is not None and answer.count == 2
    apex = cube.closure_query((None, None))
    assert apex is not None and apex.count == 3
    assert cube.closure_query((5, 5)) is None


def test_cells_at_arity_and_ordering():
    cube = build_cube()
    assert cube.cells_at_arity(0) == [(None, None)]
    assert set(cube.cells_at_arity(2)) == {(0, 1)}
    ordered = cube.cells()
    assert ordered[0] == (None, None)


def test_size_accounting_uses_cost_model():
    cube = build_cube()
    per_cell = 2 * BYTES_PER_DIM + BYTES_PER_COUNT
    assert cube.size_cells() == 3
    assert cube.size_bytes() == 3 * per_cell
    assert cube.size_megabytes() == pytest.approx(3 * per_cell / (1024 * 1024))


def test_format_with_relation_and_limit():
    relation = Relation.from_rows([("x", "u"), ("x", "v")], ["A", "B"])
    cube = CubeResult(2)
    cube.add((None, None), 2)
    cube.add((0, None), 2)
    text = cube.format(relation, limit=1)
    assert "A=*" in text
    assert "more cells" in text


def test_count_matching_tuples():
    relation = Relation.from_columns([[0, 0, 1], [1, 2, 1]])
    assert count_matching_tuples(relation, (0, None)) == 2
    assert count_matching_tuples(relation, (None, 1)) == 2
    assert count_matching_tuples(relation, (1, 2)) == 0
