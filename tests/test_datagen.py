"""Tests for the data generators (distributions, synthetic, dependence, weather)."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.core.errors import WorkloadError
from repro.datagen.dependence import (
    DependenceRule,
    apply_rules,
    dependence_score,
    measure_functional_dependences,
    plan_rules,
    rule_pruning_power,
)
from repro.datagen.distributions import ZipfSampler, make_samplers
from repro.datagen.synthetic import (
    SyntheticConfig,
    generate_relation,
    generate_relation_with_rules,
    mixed_cardinality_config,
)
from repro.datagen.weather import (
    WEATHER_DIMENSIONS,
    WeatherConfig,
    generate_weather_relation,
    weather_subset,
)


# ---------------------------------------------------------------------- #
# Distributions                                                            #
# ---------------------------------------------------------------------- #

def test_zipf_sampler_uniform_covers_domain():
    sampler = ZipfSampler(5, 0.0, random.Random(1))
    values = sampler.sample_many(500)
    assert set(values) == {0, 1, 2, 3, 4}


def test_zipf_sampler_skew_prefers_small_values():
    sampler = ZipfSampler(50, 2.0, random.Random(2))
    values = sampler.sample_many(2000)
    counts = Counter(values)
    assert counts[0] > counts.get(10, 0)
    assert counts[0] > len(values) * 0.3


def test_zipf_sampler_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0, random.Random(0))
    with pytest.raises(ValueError):
        ZipfSampler(3, -1.0, random.Random(0))
    assert ZipfSampler(1, 3.0, random.Random(0)).sample() == 0


def test_make_samplers_are_independent_per_dimension():
    first = make_samplers([4, 4], [0.0, 0.0], seed=7)
    second = make_samplers([4, 9], [0.0, 0.0], seed=7)
    draws_first = [first[0].sample() for _ in range(20)]
    draws_second = [second[0].sample() for _ in range(20)]
    assert draws_first == draws_second
    with pytest.raises(ValueError):
        make_samplers([4], [0.0, 1.0], seed=1)


# ---------------------------------------------------------------------- #
# Dependence rules                                                         #
# ---------------------------------------------------------------------- #

def test_rule_pruning_power_matches_paper_formula():
    rule = DependenceRule(((0, 0), (1, 0)), target_dim=2, target_value=0)
    cards = [10, 5, 4]
    expected = 4 / (10 * 5 * (4 + 1))
    assert rule_pruning_power(rule, cards) == pytest.approx(expected)


def test_dependence_score_accumulates_rules():
    cards = [10, 10, 10]
    rules = [
        DependenceRule(((0, 0),), 1, 0),
        DependenceRule(((1, 0),), 2, 0),
    ]
    power = rule_pruning_power(rules[0], cards)
    assert dependence_score(rules, cards) == pytest.approx(-2 * math.log(1 - power))


def test_apply_rules_enforces_dependences():
    rows = [[0, 1, 2], [0, 1, 3], [1, 1, 2]]
    rule = DependenceRule(((0, 0),), target_dim=2, target_value=9)
    rewrites = apply_rules(rows, [rule])
    assert rewrites == 2
    holds = measure_functional_dependences(rows, [rule])
    assert holds[rule] == 1.0


def test_plan_rules_reaches_target_score():
    cards = (8,) * 6
    rules = plan_rules(cards, target_score=2.0, seed=3)
    assert rules
    assert dependence_score(rules, cards) >= 2.0
    assert plan_rules(cards, target_score=0.0) == []
    with pytest.raises(WorkloadError):
        plan_rules(cards, target_score=-1.0)
    with pytest.raises(WorkloadError):
        plan_rules((5,), target_score=1.0)


# ---------------------------------------------------------------------- #
# Synthetic configurations                                                 #
# ---------------------------------------------------------------------- #

def test_synthetic_config_validation_and_describe():
    config = SyntheticConfig.uniform(100, 4, 10, skew=1.0, dependence=2.0)
    assert config.num_dims == 4
    assert "T=100" in config.describe() and "R=2.0" in config.describe()
    with pytest.raises(WorkloadError):
        SyntheticConfig(num_tuples=0, cardinalities=(2,), skews=(0.0,))
    with pytest.raises(WorkloadError):
        SyntheticConfig(num_tuples=5, cardinalities=(2,), skews=(0.0, 0.0))


def test_generate_relation_respects_shape_and_seed():
    config = SyntheticConfig.uniform(80, 3, 5, skew=0.0, seed=11)
    first = generate_relation(config)
    second = generate_relation(config)
    assert first.num_tuples == 80
    assert first.num_dimensions == 3
    assert all(card <= 5 for card in first.cardinalities())
    assert [first.row(t) for t in range(80)] == [second.row(t) for t in range(80)]


def test_generate_relation_with_rules_reports_dependence():
    config = SyntheticConfig.uniform(60, 4, 6, dependence=1.0, seed=2)
    relation, rules, achieved = generate_relation_with_rules(config)
    assert rules and achieved >= 1.0
    rows = [list(relation.row(t)) for t in range(relation.num_tuples)]
    holds = measure_functional_dependences(rows, rules)
    assert all(value == 1.0 for value in holds.values())


def test_generate_relation_with_measures():
    config = SyntheticConfig.uniform(20, 2, 3, num_measures=2, seed=4)
    relation = generate_relation(config)
    assert relation.schema.measure_names == ("m0", "m1")
    assert len(relation.measure_columns[0]) == 20


def test_mixed_cardinality_config_shape():
    config = mixed_cardinality_config(200, low_cardinality=10, high_cardinality=100)
    assert config.num_dims == 8
    assert config.cardinalities[:4] == (10,) * 4
    assert config.cardinalities[4:] == (100,) * 4


# ---------------------------------------------------------------------- #
# Weather simulator                                                        #
# ---------------------------------------------------------------------- #

def test_weather_relation_shape_and_determinism():
    config = WeatherConfig(num_tuples=300, seed=5)
    first = generate_weather_relation(config)
    second = generate_weather_relation(config)
    assert first.num_tuples == 300
    assert first.schema.dimension_names == WEATHER_DIMENSIONS
    assert [first.row(t) for t in range(50)] == [second.row(t) for t in range(50)]


def test_weather_relation_has_station_dependences():
    relation = generate_weather_relation(WeatherConfig(num_tuples=400, seed=6))
    station_dim = WEATHER_DIMENSIONS.index("station")
    lat_dim = WEATHER_DIMENSIONS.index("latitude")
    lon_dim = WEATHER_DIMENSIONS.index("longitude")
    per_station = {}
    for tid in range(relation.num_tuples):
        station = relation.value(tid, station_dim)
        coords = (relation.value(tid, lat_dim), relation.value(tid, lon_dim))
        per_station.setdefault(station, set()).add(coords)
    # Station functionally determines latitude and longitude.
    assert all(len(coords) == 1 for coords in per_station.values())


def test_weather_relation_is_skewed():
    relation = generate_weather_relation(WeatherConfig(num_tuples=500, seed=7))
    station_dim = WEATHER_DIMENSIONS.index("station")
    counts = Counter(relation.columns[station_dim])
    top = counts.most_common(1)[0][1]
    assert top > 500 / len(counts) * 3  # far above the uniform expectation


def test_weather_subset_keeps_prefix_dimensions():
    relation = generate_weather_relation(WeatherConfig(num_tuples=100, seed=8))
    subset = weather_subset(relation, 5)
    assert subset.num_dimensions == 5
    assert subset.schema.dimension_names == WEATHER_DIMENSIONS[:5]
