"""Tests for the docs CI helpers (``tools/check_docs.py``).

The subprocess example-runner is exercised by the CI ``docs`` job itself;
these tests pin the link extraction and resolution semantics, plus the
repo-wide invariant the job enforces: every intra-repo reference in the
tracked markdown resolves today.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "tools")
)

import check_docs  # noqa: E402


def test_extract_markdown_links():
    text = (
        "See [the guide](docs/GUIDE.md#usage) and "
        "![a diagram](img/d.png) plus [external](https://example.com)."
    )
    targets = check_docs.extract_targets(text)
    assert "docs/GUIDE.md#usage" in targets
    assert "https://example.com" in targets
    assert "img/d.png" not in targets  # images are not link targets


def test_extract_backticked_file_references():
    text = (
        "Run `benchmarks/bench_replication.py` against `docs/OPERATIONS.md`; "
        "`repro.replication` is a module, `python -m pytest` a command."
    )
    targets = check_docs.extract_targets(text)
    assert "benchmarks/bench_replication.py" in targets
    assert "docs/OPERATIONS.md" in targets
    assert all("pytest" not in target for target in targets)
    assert "repro.replication" not in targets


def test_resolve_target_roots(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "GUIDE.md").write_text("# guide\n")
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "api.py").write_text("")
    doc = str(tmp_path / "README.md")

    ok, _ = check_docs.resolve_target(doc, "docs/GUIDE.md", str(tmp_path))
    assert ok
    ok, _ = check_docs.resolve_target(
        doc, "docs/GUIDE.md#anchor", str(tmp_path)
    )
    assert ok
    # Module-path style resolves through the src/ layout root.
    ok, _ = check_docs.resolve_target(doc, "repro/api.py", str(tmp_path))
    assert ok
    ok, _ = check_docs.resolve_target(doc, "#bare-anchor", str(tmp_path))
    assert ok
    ok, _ = check_docs.resolve_target(doc, "https://x.invalid", str(tmp_path))
    assert ok
    ok, detail = check_docs.resolve_target(doc, "docs/NOPE.md", str(tmp_path))
    assert not ok and "NOPE" in detail


def test_repo_markdown_links_all_resolve():
    failures = check_docs.check_links()
    assert failures == [], "\n".join(failures)


def test_repo_has_examples_and_docs():
    assert len(check_docs.iter_examples()) >= 5
    docs = {os.path.basename(path) for path in check_docs.iter_markdown_files()}
    assert {"README.md", "ARCHITECTURE.md", "REPLICATION.md",
            "OPERATIONS.md"} <= docs
