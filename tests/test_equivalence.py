"""Cross-algorithm equivalence: every engine must agree with the oracle.

This is the library's central correctness property: on any input relation and
any ``min_sup``, every closed-cubing algorithm produces exactly the closed
iceberg cube of the oracle, and every iceberg engine produces exactly the
iceberg cube.  It is exercised both on seeded random relations (pytest
parameterisation) and with hypothesis-generated relations, including skewed
and dependent data from the package's own generators.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Relation
from repro.algorithms.base import CubingOptions, get_algorithm
from repro.core.validate import (
    check_closedness_definition,
    check_counts,
    check_quotient_semantics,
    reference_closed_cube,
    reference_iceberg_cube,
)
from repro.datagen.synthetic import SyntheticConfig, generate_relation

from repro.core.columns import use_backend

from conftest import BACKEND_NAMES, CLOSED_ALGORITHMS, ICEBERG_ALGORITHMS, random_relation


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("min_sup", [1, 2, 3])
def test_closed_algorithms_agree_with_oracle(seed, min_sup, column_backend):
    relation = random_relation(seed, max_dims=5, max_cardinality=4, max_tuples=35)
    expected = reference_closed_cube(relation, min_sup)
    for name in CLOSED_ALGORITHMS:
        cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(relation).cube
        assert expected.same_cells(cube), f"{name}:\n" + expected.diff(cube)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("min_sup", [1, 2, 3])
def test_iceberg_algorithms_agree_with_oracle(seed, min_sup, column_backend):
    relation = random_relation(seed + 50, max_dims=5, max_cardinality=4, max_tuples=35)
    expected = reference_iceberg_cube(relation, min_sup)
    for name in ICEBERG_ALGORITHMS:
        cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(relation).cube
        assert expected.same_cells(cube), f"{name}:\n" + expected.diff(cube)


@pytest.mark.parametrize("skew", [0.0, 2.0])
@pytest.mark.parametrize("dependence", [0.0, 1.5])
def test_agreement_on_generated_workloads(skew, dependence, column_backend):
    config = SyntheticConfig.uniform(
        num_tuples=60, num_dims=4, cardinality=4, skew=skew, dependence=dependence, seed=9
    )
    relation = generate_relation(config)
    for min_sup in (1, 2, 4):
        expected = reference_closed_cube(relation, min_sup)
        for name in ("qc-dfs", "c-cubing-mm", "c-cubing-star", "c-cubing-star-array"):
            cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(relation).cube
            assert expected.same_cells(cube), f"{name}:\n" + expected.diff(cube)


def test_closed_cube_satisfies_definition_and_quotient_semantics(column_backend):
    relation = random_relation(1234, max_dims=4, max_cardinality=3, max_tuples=25)
    closed = get_algorithm("c-cubing-star", CubingOptions(min_sup=1)).run(relation).cube
    check_counts(relation, closed)
    check_closedness_definition(relation, closed)
    check_quotient_semantics(relation, closed, min_sup=1)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2), st.integers(0, 1)),
        min_size=1,
        max_size=20,
    ),
    min_sup=st.integers(1, 3),
)
def test_property_closed_algorithms_match_oracle(rows, min_sup):
    relation = Relation.from_rows(rows)
    expected = reference_closed_cube(relation, min_sup)
    # Looped rather than fixture-parametrized: hypothesis forbids
    # function-scoped fixtures under @given.
    for backend in BACKEND_NAMES:
        with use_backend(backend):
            for name in ("qc-dfs", "c-cubing-mm", "c-cubing-star", "c-cubing-star-array"):
                cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(relation).cube
                assert expected.same_cells(cube), f"{name}[{backend}]:\n" + expected.diff(cube)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)),
        min_size=1,
        max_size=25,
    ),
    min_sup=st.integers(1, 4),
)
def test_property_iceberg_algorithms_match_oracle(rows, min_sup):
    relation = Relation.from_rows(rows)
    expected = reference_iceberg_cube(relation, min_sup)
    for backend in BACKEND_NAMES:
        with use_backend(backend):
            for name in ICEBERG_ALGORITHMS:
                cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(relation).cube
                assert expected.same_cells(cube), f"{name}[{backend}]:\n" + expected.diff(cube)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
        min_size=1,
        max_size=18,
    )
)
def test_property_closed_cube_is_lossless(rows):
    """Quotient-cube semantics: the closed cube answers every full-cube query."""
    relation = Relation.from_rows(rows)
    closed = get_algorithm("c-cubing-star", CubingOptions(min_sup=1)).run(relation).cube
    full = reference_iceberg_cube(relation, 1)
    for cell, stats in full.items():
        answer = closed.closure_query(cell)
        assert answer is not None
        assert answer.count == stats.count
