"""Smoke tests: every example script must run end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print something"


def test_examples_exist():
    assert len(EXAMPLES) >= 3
