"""Tests for incremental cube maintenance (:mod:`repro.incremental`).

The load-bearing property is the acceptance criterion of the subsystem: for
random relations, ``append(rows)`` followed by *any* query must be
indistinguishable from a full recompute over the concatenated relation —
same closed cells, same counts, same measure values, exhaustively over the
whole cube lattice.  Everything else here (index maintenance, cache
invalidation, fallback modes, delta runs) supports that property.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    AvgMeasure,
    CubeSession,
    MinMeasure,
    Relation,
    Sum,
    SumMeasure,
    compute_closed_cube,
)
from repro.algorithms.base import CubingOptions, get_algorithm
from repro.core.cell import fixed_mask, generalisations, meet_cells
from repro.core.closedness import closed_cell_state
from repro.core.errors import IncrementalError
from repro.core.measures import MeasureSet
from repro.incremental.merge import MergeReport, support_generalisations
from repro.query.index import CubeIndex

from conftest import random_relation
from test_query_engine import lattice_cells


def split_rows(seed: int, max_dims: int = 4, max_cardinality: int = 4):
    """Random raw base and delta row blocks over a shared value universe."""
    rng = random.Random(seed)
    num_dims = rng.randint(1, max_dims)
    cardinality = rng.randint(1, max_cardinality)
    base = [
        tuple(f"v{rng.randrange(cardinality)}" for _ in range(num_dims))
        for _ in range(rng.randint(1, 30))
    ]
    delta = [
        # Half the delta draws from a wider universe, so dictionary growth
        # (unseen values) is exercised on most seeds.
        tuple(
            f"v{rng.randrange(2 * cardinality)}" for _ in range(num_dims)
        )
        for _ in range(rng.randint(1, 15))
    ]
    return base, delta


# --------------------------------------------------------------------------- #
# The equivalence property (acceptance criterion)                              #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(12))
def test_append_then_query_equals_full_recompute_lattice_exhaustive(seed):
    base_rows, delta_rows = split_rows(seed)
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    report = cube.append(delta_rows)
    assert report.mode == "delta-merge"
    assert report.appended_rows == len(delta_rows)

    rebuilt = CubeSession.from_rows(base_rows + delta_rows).closed(min_sup=1).build()
    # Same dictionary growth order => same codes => cells comparable directly.
    assert cube.cube.same_cells(rebuilt.cube), cube.cube.diff(rebuilt.cube)
    for cell in lattice_cells(cube.relation):
        incremental = cube.engine.point(cell)
        recomputed = rebuilt.engine.point(cell)
        assert incremental.count == recomputed.count, cell


@pytest.mark.parametrize("seed", range(6))
def test_append_preserves_measure_values(seed):
    base_rows, delta_rows = split_rows(seed + 300, max_dims=3)
    rng = random.Random(seed + 900)
    base = [row + (round(rng.uniform(0, 9), 2),) for row in base_rows]
    delta = [row + (round(rng.uniform(0, 9), 2),) for row in delta_rows]
    names = [f"d{i}" for i in range(len(base_rows[0]))]
    schema = {"dimensions": names, "measures": ["m"]}

    cube = (
        CubeSession.from_rows(base, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("m"))
        .build()
    )
    assert cube.append(delta).mode == "delta-merge"
    rebuilt = (
        CubeSession.from_rows(base + delta, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("m"))
        .build()
    )
    assert set(cube.cube) == set(rebuilt.cube)
    for cell in cube.cube:
        ours, theirs = cube.cube[cell], rebuilt.cube[cell]
        assert ours.count == theirs.count
        assert ours.measures["sum(m)"] == pytest.approx(theirs.measures["sum(m)"])


@pytest.mark.parametrize("seed", range(4))
def test_repeated_appends_stay_exact(seed):
    base_rows, delta_rows = split_rows(seed + 600)
    chunks = [delta_rows[i::3] for i in range(3)]
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    appended = []
    for chunk in chunks:
        if not chunk:
            continue
        cube.append(chunk)
        appended.extend(chunk)
    rebuilt = CubeSession.from_rows(base_rows + appended).closed(min_sup=1).build()
    for cell in lattice_cells(cube.relation):
        assert cube.engine.point(cell).count == rebuilt.engine.point(cell).count


def test_append_grows_dictionaries_append_only():
    rows = [("a", "x"), ("b", "x")]
    cube = CubeSession.from_rows(rows, schema=["L", "R"]).closed().build()
    before = dict(cube.relation.encoder(0))
    cube.append([("c", "y"), ("a", "y")])
    after = cube.relation.encoder(0)
    for value, code in before.items():
        assert after[value] == code, "existing codes must never be reassigned"
    assert cube.point({"L": "c"}).count == 1
    assert cube.point({"R": "y"}).count == 2


def test_empty_append_is_a_no_op():
    cube = CubeSession.from_rows([("a",), ("b",)]).closed().build()
    cells_before = len(cube)
    report = cube.append([])
    assert report.mode == "no-op"
    assert report.appended_rows == 0
    assert len(cube) == cells_before


# --------------------------------------------------------------------------- #
# Fallback modes stay exact too                                                #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize(
    "configure, expected_mode",
    [
        (lambda s: s.closed(min_sup=3), "full-recompute"),
        (lambda s: s.iceberg(min_sup=2), "full-recompute"),
        (lambda s: s.closed(min_sup=1).partitioned(), "partition-refresh"),
    ],
)
def test_fallback_modes_match_recompute(configure, expected_mode):
    base_rows, delta_rows = split_rows(7, max_dims=3)
    if len(base_rows[0]) < 2:
        base_rows = [row + ("p",) for row in base_rows]
        delta_rows = [row + ("q",) for row in delta_rows]
    session = configure(CubeSession.from_rows(base_rows))
    cube = session.build()
    report = cube.append(delta_rows)
    assert report.mode == expected_mode
    rebuilt = configure(CubeSession.from_rows(base_rows + delta_rows)).build()
    assert cube.cube.same_cells(rebuilt.cube), cube.cube.diff(rebuilt.cube)
    for cell in lattice_cells(cube.relation):
        assert cube.engine.point(cell).count == rebuilt.engine.point(cell).count


def test_partition_refresh_reports_touched_partitions():
    base = [("s1", "a"), ("s1", "b"), ("s2", "a"), ("s3", "b")]
    cube = (
        CubeSession.from_rows(base, schema=["store", "product"])
        .closed()
        .partitioned("store")
        .build()
    )
    report = cube.append([("s2", "b"), ("s9", "a")])
    assert report.mode == "partition-refresh"
    # Partition values are encoded; decode for readability.
    decoded = {
        cube.relation.decode(cube.engine.partition_dim, value)
        for value in report.refreshed_partitions
    }
    assert decoded == {"s2", "s9"}
    assert cube.point({"store": "s9"}).count == 1
    assert cube.point({"store": "s1"}).count == 2


def test_session_refresh_rebuilds_over_grown_relation():
    session = CubeSession.from_rows([("a",), ("b",)]).closed()
    cube = session.build()
    cube.append([("c",)])
    fresh = session.refresh()
    assert fresh.relation is cube.relation
    assert fresh.point({"d0": "c"}).count == 1


# --------------------------------------------------------------------------- #
# Cache maintenance                                                            #
# --------------------------------------------------------------------------- #


def test_append_invalidates_affected_answers_and_keeps_the_rest():
    rows = [("a", "x"), ("a", "y"), ("b", "x")]
    cube = CubeSession.from_rows(rows, schema=["L", "R"]).closed().build()
    assert cube.point({"L": "a"}).count == 2
    assert cube.point({"L": "b"}).count == 1

    report = cube.append([("a", "z")])
    assert report.mode == "delta-merge"
    assert report.invalidated_answers > 0
    # The touched answer is refreshed, the untouched one still served.
    assert cube.point({"L": "a"}).count == 3
    assert cube.point({"L": "b"}).count == 1
    # The untouched decoded answer survived invalidation: second read hits.
    hits_before = cube._decoded.hits
    assert cube.point({"L": "b"}).count == 1
    assert cube._decoded.hits == hits_before + 1


def test_stats_and_cache_observability():
    cube = CubeSession.from_rows([("a",), ("a",), ("b",)]).closed().build()
    cube.point({"d0": "a"})
    cube.point({"d0": "a"})
    info = cube.cache_info()
    assert set(info) == {"answers", "decoded"}
    assert info["decoded"]["hits"] >= 1
    assert cube.stats()["cache_info"] == cube.cache_info()
    cube.clear_cache()
    assert cube.cache_info()["answers"]["entries"] == 0
    assert cube.cache_info()["decoded"]["entries"] == 0
    # Counters survive a clear, so dashboards keep their history.
    assert cube.cache_info()["decoded"]["hits"] >= 1


# --------------------------------------------------------------------------- #
# In-place index maintenance                                                   #
# --------------------------------------------------------------------------- #


def test_cube_index_add_remove_touch():
    relation = random_relation(42, max_dims=3)
    cube = compute_closed_cube(relation, min_sup=1, algorithm="naive-closed")
    index = CubeIndex.from_cube(cube)
    size = len(index)
    apex = (None,) * relation.num_dimensions
    apex_count_before = index.closure(apex)[1].count

    tall = tuple(relation.row(0))
    new_stats_count = apex_count_before + 100
    from repro.core.cube import CellStats

    extra = tuple(value + 50 for value in tall)
    index.add_cells([(extra, CellStats(new_stats_count, {}, None))])
    assert len(index) == size + 1
    assert index.closure(apex)[1].count == new_stats_count

    index.remove_cells([extra])
    assert len(index) == size
    assert index.closure(apex)[1].count == apex_count_before
    assert all(slot is not None for slot in [index.closure_slot(apex)])

    # touch_cell after an in-place count bump re-evaluates the apex closure.
    cell, stats = next(iter(cube.items()))
    stats.count += 10_000
    index.touch_cell(cell)
    assert index.closure(apex)[1].count == stats.count


def test_cube_add_and_upsert_keep_live_index_current():
    cube = compute_closed_cube(
        Relation.from_rows([("a", "x"), ("b", "y")]), min_sup=1
    )
    index = cube.closure_index()
    cube.upsert((0, 0), 41, rep_tid=0)
    assert cube.closure_index() is index
    assert cube.closure_query((0, 0)).count == 41
    cube.remove((0, 0))
    assert cube.closure_query((0, 0)) is None or cube.closure_query((0, 0)).count != 41


# --------------------------------------------------------------------------- #
# Delta runs and merge-level errors                                            #
# --------------------------------------------------------------------------- #


def test_run_delta_shifts_rep_tids_into_global_space():
    relation = Relation.from_rows([("a",), ("b",)])
    relation.append_rows([("b",), ("c",)])
    algorithm = get_algorithm("naive-closed", CubingOptions(closed=True))
    result = algorithm.run_delta(relation, start_tid=2)
    assert result.stats["delta_tuples"] == 2
    for _, stats in result.cube.items():
        assert stats.rep_tid is not None and stats.rep_tid >= 2


def test_merge_rejects_dimension_mismatch():
    one = compute_closed_cube(Relation.from_rows([("a",)]), min_sup=1)
    two_rel = Relation.from_rows([("a", "b")])
    two = compute_closed_cube(two_rel, min_sup=1)
    with pytest.raises(IncrementalError):
        one.merge(two, two_rel)


def test_merge_requires_rep_tids():
    relation = Relation.from_rows([("a",), ("b",)])
    base = compute_closed_cube(relation, min_sup=1)
    delta = compute_closed_cube(relation, min_sup=1)
    for _, stats in delta.items():
        stats.rep_tid = None
    with pytest.raises(IncrementalError):
        base.merge(delta, relation)


def test_merge_reports_what_changed():
    rows = [("a", "x"), ("b", "y")]
    relation = Relation.from_rows(rows)
    base = compute_closed_cube(relation, min_sup=1, algorithm="naive-closed")
    relation.append_rows([("a", "y")])
    delta = (
        get_algorithm("naive-closed", CubingOptions(closed=True))
        .run_delta(relation, 2)
        .cube
    )
    report = base.merge(delta, relation)
    assert isinstance(report, MergeReport)
    assert report.delta_cells == len(delta)
    assert set(report.added).isdisjoint(report.updated)
    assert report.changed_cells()
    assert "added" in report.describe()


def test_merge_with_mismatched_measures_raises():
    rows = [("a",), ("b",)]
    measures = {"m": [1.0, 2.0]}
    relation = Relation.from_rows(rows, measures=measures)
    specs = [SumMeasure("m")]
    base = compute_closed_cube(relation, min_sup=1, measures=specs, algorithm="naive-closed")
    relation.append_rows([("c",)], measures={"m": [3.0]})
    delta = (
        get_algorithm(
            "naive-closed",
            CubingOptions(closed=True, measures=MeasureSet(specs)),
        )
        .run_delta(relation, 2)
        .cube
    )
    with pytest.raises(IncrementalError):
        base.merge(delta, relation, measures=MeasureSet([MinMeasure("m")]))


# --------------------------------------------------------------------------- #
# Cell vocabulary used by the merge                                            #
# --------------------------------------------------------------------------- #


def test_meet_and_fixed_mask_vocabulary():
    assert meet_cells((1, None, 2), (1, 3, None)) == (1, None, None)
    assert meet_cells((1, 2), (3, 2)) == (None, 2)
    assert fixed_mask((1, None, 2)) == 0b101
    gens = set(generalisations((1, 2)))
    assert gens == {(1, 2), (1, None), (None, 2), (None, None)}
    assert support_generalisations([(1, 2), (1, 3)]) == {
        (1, 2), (1, 3), (1, None), (None, 2), (None, 3), (None, None)
    }


def test_closed_cell_state_reconstruction_matches_definition():
    state = closed_cell_state((1, None, 2), rep_tid=4)
    assert state.rep_tid == 4
    assert state.closed_mask == fixed_mask((1, None, 2))
    with pytest.raises(IncrementalError):
        closed_cell_state((1, None), rep_tid=None)


def test_measure_state_reconstruction_round_trips():
    relation = Relation.from_rows([("a",), ("a",)], measures={"m": [2.0, 4.0]})
    for spec, expected in [
        (SumMeasure("m"), 6.0),
        (AvgMeasure("m"), 3.0),
        (MinMeasure("m"), 2.0),
    ]:
        state = spec.reconstruct(expected, 2)
        assert state.value() == pytest.approx(expected)
    merged = MeasureSet([SumMeasure("m"), AvgMeasure("m")]).merge_values(
        {"sum(m)": 6.0, "avg(m)": 3.0}, 2, {"sum(m)": 10.0, "avg(m)": 10.0}, 1
    )
    assert merged["sum(m)"] == pytest.approx(16.0)
    assert merged["avg(m)"] == pytest.approx(16.0 / 3.0)


def test_maintenance_refuses_guessed_config():
    """A ServingCube constructed without an explicit config must not maintain
    itself under guessed settings (e.g. delta-merging an iceberg cube)."""
    from repro.query.engine import QueryEngine
    from repro.session.schema import CubeSchema
    from repro.session.serving import ServingCube

    relation = Relation.from_rows([("a",), ("a",), ("b",)])
    iceberg = compute_closed_cube(relation, min_sup=2)
    serving = ServingCube(
        relation, CubeSchema(("d0",)), iceberg, QueryEngine(iceberg), "c-cubing-star"
    )
    with pytest.raises(IncrementalError, match="ServingConfig"):
        serving.append([("c",)])
    assert relation.num_tuples == 3, "a refused append must not grow the relation"
    with pytest.raises(IncrementalError, match="ServingConfig"):
        serving.refresh()
    # Session-built and snapshot-loaded cubes always know their config.
    assert CubeSession.from_rows([("a",)]).closed().build().config_known


def test_append_rows_failing_mid_row_leaves_relation_intact():
    relation = Relation.from_rows([("a", "x"), ("b", "y")])
    with pytest.raises(TypeError):
        relation.append_rows([("c", ["unhashable"])])
    assert relation.num_tuples == 2
    assert {len(col) for col in relation.columns} == {2}, (
        "a mid-row encoding failure must not leave unequal column lengths"
    )
    # The relation still works end to end afterwards.
    relation.append_rows([("c", "z")])
    assert relation.num_tuples == 3


def test_full_recompute_append_reports_cache_invalidations():
    cube = CubeSession.from_rows([("a",), ("a",), ("b",)]).closed(min_sup=2).build()
    cube.point({"d0": "a"})
    report = cube.append([("b",)])
    assert report.mode == "full-recompute"
    assert report.invalidated_answers >= 1, (
        "the cleared answer caches must be counted in every mode"
    )
