"""Tests for :mod:`repro.lint` — the concurrency/durability static analyzer.

Three layers:

* the **fixture corpus** under ``tests/lint_fixtures/`` — every
  ``rlNNN_bad_*`` file must fire rule RLNNN, every ``rlNNN_good_*`` file
  must be clean under *all* rules;
* the **clean-tree pin** — ``repro.lint`` over ``src/``, ``benchmarks/``,
  and ``examples/`` reports zero unsuppressed findings (the CI contract this
  repo ships with);
* the **machinery** — suppression comments, the accepted-debt baseline, and
  the CLI's exit-status policy.
"""

from __future__ import annotations

import json
import os
import re
import textwrap

import pytest

from repro.lint import ALL_RULES, Baseline, Finding, run_lint
from repro.lint.cli import main
from repro.lint.engine import PARSE_ERROR_CODE

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(TESTS_DIR)
FIXTURES = os.path.join(TESTS_DIR, "lint_fixtures")


def _fixture_files():
    collected = []
    for root, _dirs, files in os.walk(FIXTURES):
        for name in sorted(files):
            if name.endswith(".py"):
                collected.append(os.path.join(root, name))
    return sorted(collected)


BAD_FIXTURES = [path for path in _fixture_files() if "_bad_" in path]
GOOD_FIXTURES = [path for path in _fixture_files() if "_good_" in path]


def _expected_rule(path: str) -> str:
    match = re.search(r"(rl\d{3})_", os.path.basename(path))
    assert match, f"fixture {path!r} does not encode its rule"
    return match.group(1).upper()


# --------------------------------------------------------------------------- #
# Fixture corpus                                                               #
# --------------------------------------------------------------------------- #


def test_fixture_corpus_is_complete():
    """Every rule has at least two bad and two good fixtures."""
    for rule in ALL_RULES:
        code = rule.code.lower()
        bad = [p for p in BAD_FIXTURES if os.path.basename(p).startswith(code)]
        good = [p for p in GOOD_FIXTURES if os.path.basename(p).startswith(code)]
        assert len(bad) >= 2, f"{rule.code} needs >=2 bad fixtures, has {bad}"
        assert len(good) >= 2, f"{rule.code} needs >=2 good fixtures, has {good}"


@pytest.mark.parametrize(
    "path", BAD_FIXTURES, ids=[os.path.basename(p) for p in BAD_FIXTURES]
)
def test_bad_fixture_fires_its_rule(path):
    result = run_lint([path], root=REPO_ROOT)
    expected = _expected_rule(path)
    fired = result.by_rule(expected)
    assert fired, (
        f"{os.path.basename(path)} produced no {expected} finding; "
        f"got {[f.render() for f in result.findings]}"
    )
    # Findings carry a real location and end up in the file they came from.
    for finding in fired:
        assert finding.line >= 1
        assert finding.path.replace("\\", "/").endswith(
            os.path.basename(path)
        )


@pytest.mark.parametrize(
    "path", GOOD_FIXTURES, ids=[os.path.basename(p) for p in GOOD_FIXTURES]
)
def test_good_fixture_is_clean_under_every_rule(path):
    result = run_lint([path], root=REPO_ROOT)
    assert result.findings == [], [f.render() for f in result.findings]
    assert result.suppressed == []  # good fixtures earn silence, not waivers


# --------------------------------------------------------------------------- #
# The clean-tree pin (the CI contract)                                         #
# --------------------------------------------------------------------------- #


def test_source_tree_has_zero_unsuppressed_findings():
    paths = [os.path.join(REPO_ROOT, "src")]
    for extra in ("benchmarks", "examples"):
        extra_dir = os.path.join(REPO_ROOT, extra)
        if os.path.isdir(extra_dir):
            paths.append(extra_dir)
    result = run_lint(paths, root=REPO_ROOT)
    assert result.checked_files > 50  # the walker actually saw the tree
    assert result.findings == [], "\n".join(
        f.render() for f in result.findings
    )


# --------------------------------------------------------------------------- #
# Suppressions                                                                 #
# --------------------------------------------------------------------------- #

BAD_STORAGE_SNIPPET = """\
def save(path, payload):
    with open(path, "w") as stream:{inline}
        stream.write(payload)
"""


def _lint_snippet(tmp_path, source, name="repro/storage/generated.py"):
    target = tmp_path / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint([str(target)], root=str(tmp_path))


def test_inline_suppression_silences_only_named_rules(tmp_path):
    loud = _lint_snippet(tmp_path, BAD_STORAGE_SNIPPET.format(inline=""))
    assert [f.rule for f in loud.findings] == ["RL005"]

    quiet = _lint_snippet(
        tmp_path,
        BAD_STORAGE_SNIPPET.format(inline="  # repro-lint: disable=RL005"),
    )
    assert quiet.findings == []
    assert [f.rule for f in quiet.suppressed] == ["RL005"]

    wrong_code = _lint_snippet(
        tmp_path,
        BAD_STORAGE_SNIPPET.format(inline="  # repro-lint: disable=RL001"),
    )
    assert [f.rule for f in wrong_code.findings] == ["RL005"]


def test_standalone_comment_suppresses_the_line_below(tmp_path):
    result = _lint_snippet(
        tmp_path,
        """\
        def save(path, payload):
            # transient scratch file  # repro-lint: disable=all
            with open(path, "w") as stream:
                stream.write(payload)
        """,
    )
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["RL005"]


def test_parse_errors_are_reported_and_not_suppressible(tmp_path):
    result = _lint_snippet(
        tmp_path,
        "def broken(:  # repro-lint: disable=all\n",
    )
    assert [f.rule for f in result.findings] == [PARSE_ERROR_CODE]


# --------------------------------------------------------------------------- #
# Baseline                                                                     #
# --------------------------------------------------------------------------- #


def test_baseline_matches_by_fingerprint_not_line(tmp_path):
    finding = Finding(rule="RL005", path="a.py", line=10, col=0, message="m")
    moved = Finding(rule="RL005", path="a.py", line=99, col=4, message="m")
    other = Finding(rule="RL005", path="a.py", line=10, col=0, message="n")
    baseline = Baseline.from_findings([finding])
    assert baseline.contains(moved)
    assert not baseline.contains(other)
    assert baseline.stale_entries([moved]) == []
    assert baseline.stale_entries([other]) == [finding.fingerprint()]


def test_baseline_round_trip_and_validation(tmp_path):
    path = str(tmp_path / "baseline.json")
    finding = Finding(rule="RL001", path="b.py", line=1, col=0, message="x")
    Baseline().save(path, [finding, finding])
    loaded = Baseline.load(path)
    assert loaded.fingerprints == {finding.fingerprint()}
    (tmp_path / "bad.json").write_text(json.dumps({"version": 99}))
    with pytest.raises(ValueError):
        Baseline.load(str(tmp_path / "bad.json"))


# --------------------------------------------------------------------------- #
# CLI                                                                          #
# --------------------------------------------------------------------------- #


@pytest.fixture
def bad_tree(tmp_path, monkeypatch):
    """A tmp cwd holding one RL005 violation under repro/storage/."""
    target = tmp_path / "repro" / "storage" / "writer.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_STORAGE_SNIPPET.format(inline=""))
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_cli_exit_codes_and_baseline_workflow(bad_tree, capsys):
    assert main(["repro"]) == 1
    out = capsys.readouterr().out
    assert "RL005" in out and "writer.py" in out

    # Accept the debt, then the same tree passes — and reports it as debt.
    assert main(["repro", "--update-baseline"]) == 0
    capsys.readouterr()
    assert main(["repro"]) == 0
    assert "1 baselined" in capsys.readouterr().out
    assert main(["repro", "--no-baseline"]) == 1
    capsys.readouterr()

    # Fix the code: the run passes and flags the baseline entry as stale.
    (bad_tree / "repro" / "storage" / "writer.py").write_text(
        "def save(path, payload):\n    return (path, payload)\n"
    )
    assert main(["repro"]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_json_format_and_rule_listing(bad_tree, capsys):
    assert main(["repro", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["RL005"]

    assert main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in listing


def test_cli_missing_path_is_a_usage_error(bad_tree, capsys):
    assert main(["no-such-dir"]) == 2
