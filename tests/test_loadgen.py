"""Self-tests for the open-loop load harness (:mod:`repro.loadgen`).

A load generator that lies is worse than none, so the harness itself is
under test: the Poisson scheduler must offer the rate it claims
deterministically, the log-bucketed histogram must report percentiles
within its documented error bound against a sorted-list ground truth, and
— the one that motivates the whole design — a stalled server must *inflate*
the recorded tail, not suppress offered load (the coordinated-omission
regression test).
"""

from __future__ import annotations

import asyncio
import math
import random

import pytest

from repro import CubeCatalog
from repro.loadgen import (
    LatencyHistogram,
    LineConnection,
    LoadResult,
    MixedWorkload,
    OpenLoopReplayer,
    SweepPoint,
    TrafficClass,
    arrival_times,
    find_knee,
    poisson_arrivals,
    render_sweep,
    serving_mix,
)
from repro.loadgen.replayer import ClassStats
from repro.server import AsyncCubeServer, serve_tcp


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------- #
# Poisson schedule                                                            #
# --------------------------------------------------------------------------- #


def test_poisson_schedule_is_deterministic_in_its_seed():
    first = arrival_times(100.0, duration=2.0, seed=42)
    again = arrival_times(100.0, duration=2.0, seed=42)
    other = arrival_times(100.0, duration=2.0, seed=43)
    assert first == again
    assert first != other


def test_poisson_schedule_offers_the_requested_rate():
    # Over a long window the arrival count concentrates hard around
    # rate * duration (sd = sqrt(n)); 5 sigma keeps this deterministic
    # per-seed and still meaningful.
    rate, duration = 500.0, 20.0
    times = arrival_times(rate, duration=duration, seed=7)
    expected = rate * duration
    assert abs(len(times) - expected) < 5 * math.sqrt(expected)
    assert all(0 <= t < duration for t in times)
    assert times == sorted(times)


def test_poisson_schedule_count_and_start_bounds():
    exact = arrival_times(50.0, count=25, seed=3)
    assert len(exact) == 25
    shifted = arrival_times(50.0, count=25, seed=3, start=100.0)
    assert shifted == pytest.approx([t + 100.0 for t in exact])
    both = arrival_times(1000.0, duration=0.001, count=5, seed=3)
    assert len(both) <= 5

    with pytest.raises(ValueError, match="rate"):
        arrival_times(0.0, duration=1.0)
    with pytest.raises(ValueError, match="duration"):
        list(poisson_arrivals(10.0))


# --------------------------------------------------------------------------- #
# Histogram                                                                   #
# --------------------------------------------------------------------------- #


def test_histogram_percentiles_match_sorted_ground_truth():
    rng = random.Random(11)
    # Lognormal: the right shape for latency (long right tail spanning
    # orders of magnitude) and the regime log-bucketing is built for.
    samples = [rng.lognormvariate(-6.0, 1.5) for _ in range(20_000)]
    hist = LatencyHistogram(max_relative_error=0.01)
    for sample in samples:
        hist.record(sample)
    ordered = sorted(samples)
    for p in (1, 25, 50, 90, 99, 99.9):
        truth = ordered[max(0, math.ceil(len(ordered) * p / 100.0) - 1)]
        got = hist.percentile(p)
        assert abs(got - truth) / truth <= 0.021, (p, got, truth)
    assert hist.count == len(samples)
    assert hist.min == min(samples)
    assert hist.max == max(samples)
    assert abs(hist.mean - sum(samples) / len(samples)) < 1e-9


def test_histogram_extremes_and_empty():
    hist = LatencyHistogram()
    assert hist.percentile(50) == 0.0 and hist.count == 0 and len(hist) == 0
    hist.record(0.004)
    assert hist.percentile(0) == 0.004 and hist.percentile(100) == 0.004
    # Sub-lowest values (including zero) land in the first bucket.
    hist.record(0.0)
    assert hist.min == 0.0
    with pytest.raises(ValueError):
        hist.record(-1.0)
    with pytest.raises(ValueError):
        hist.percentile(101)


def test_histogram_merge_equals_recording_everything_into_one():
    rng = random.Random(5)
    left, right, combined = (LatencyHistogram() for _ in range(3))
    for _ in range(5000):
        value = rng.expovariate(200.0)
        (left if rng.random() < 0.5 else right).record(value)
        combined.record(value)
    left.merge(right)
    assert left.count == combined.count
    assert left.min == combined.min and left.max == combined.max
    for p in (50, 90, 99):
        assert left.percentile(p) == combined.percentile(p)
    with pytest.raises(ValueError, match="bucketing"):
        left.merge(LatencyHistogram(max_relative_error=0.05))


def test_histogram_summary_is_json_shaped_milliseconds():
    hist = LatencyHistogram()
    hist.record(0.010, count=99)
    hist.record(1.000)
    summary = hist.summary()
    assert summary["count"] == 100
    assert summary["p50_ms"] == pytest.approx(10.0, rel=0.03)
    assert summary["max_ms"] == 1000.0


# --------------------------------------------------------------------------- #
# Workload mixes                                                              #
# --------------------------------------------------------------------------- #


def test_mixed_workload_is_deterministic_and_respects_weights():
    values = {"d0": ["a", "b"], "d1": [1, 2, 3]}
    mix = serving_mix("c", values, seed=9)
    stream = iter(mix)
    first = [next(stream) for _ in range(2000)]
    again_stream = iter(serving_mix("c", values, seed=9))
    assert first == [next(again_stream) for _ in range(2000)]

    names = [name for name, _ in first]
    share = names.count("query") / len(names)
    assert share > 0.97  # weight 0.992, wide tolerance
    for _name, payload in first:
        assert payload["op"] in ("query", "append", "compact")
        assert payload["cube"] == "c"
        if payload["op"] == "append":
            assert all(len(row) == 2 for row in payload["rows"])


def test_single_class_workload_filters_zero_weights():
    values = {"d0": ["a"]}
    only_append = serving_mix(
        "c", values, query_weight=0.0, append_weight=1.0, compact_weight=0.0
    )
    assert only_append.class_names() == ["append"]
    stream = iter(only_append)
    assert all(next(stream)[0] == "append" for _ in range(50))

    with pytest.raises(ValueError, match="positive-weight"):
        MixedWorkload([TrafficClass("q", 0.0, lambda rng: {})])
    with pytest.raises(ValueError, match="negative"):
        TrafficClass("q", -1.0, lambda rng: {})
    with pytest.raises(ValueError, match="dimension"):
        serving_mix("c", {})


# --------------------------------------------------------------------------- #
# Replayer: open-loop semantics                                               #
# --------------------------------------------------------------------------- #


class _FakeTarget:
    """A 'server' whose single service lane stalls once, hard.

    Every request takes ``service`` seconds on one lane (an asyncio lock);
    the first request holds the lane for ``stall`` seconds.  A closed-loop
    client would simply send fewer requests during the stall and report a
    clean tail; the open-loop replayer must keep offering and record the
    queueing delay.
    """

    def __init__(self, service: float = 0.0005, stall: float = 0.3) -> None:
        self.service = service
        self.stall = stall
        self.calls = 0
        self._lane = asyncio.Lock()

    async def request(self, payload, timeout=None):
        self.calls += 1
        first = self.calls == 1
        async with self._lane:
            await asyncio.sleep(self.stall if first else self.service)
        return {"ok": True}


def test_open_loop_replayer_records_coordinated_omission():
    rate, duration, stall = 200.0, 0.8, 0.3
    workload = MixedWorkload(
        [TrafficClass("query", 1.0, lambda rng: {"op": "ping"})]
    )
    target = _FakeTarget(stall=stall)
    scheduled = len(arrival_times(rate, duration=duration, seed=0))

    result = run(OpenLoopReplayer(
        [target], workload, rate=rate, duration=duration, seed=0
    ).run())

    stats = result.classes["query"]
    # Open loop: every scheduled arrival was sent, stall or no stall.
    assert stats.sent == scheduled
    assert stats.completed == scheduled and result.errors == 0
    # The stall shows up in the tail: a big slice of the requests that
    # arrived during the 0.3s stall waited a large fraction of it.
    assert stats.histogram.percentile(99) >= stall / 2
    # ... while the post-stall majority stayed fast.
    assert stats.histogram.percentile(25) < stall / 2


class _ErrorTarget:
    def __init__(self, responses):
        self._responses = list(responses)

    async def request(self, payload, timeout=None):
        outcome = self._responses.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def test_replayer_counts_error_classes_separately():
    workload = MixedWorkload(
        [TrafficClass("query", 1.0, lambda rng: {"op": "ping"})]
    )
    target = _ErrorTarget([
        {"ok": True},
        {"ok": False, "error": {"type": "ServerError"}},
        ConnectionError("torn"),
        asyncio.TimeoutError(),
    ])
    result = run(_replay_exactly(target, workload, 4))
    stats = result.classes["query"]
    assert stats.sent == 4
    assert stats.completed == 2  # both received responses
    assert stats.protocol_errors == 1
    assert stats.transport_errors == 1
    assert stats.timeouts == 1
    assert stats.errors == 3
    # Failures are recorded as latency samples too, not dropped.
    assert len(stats.histogram) == 4


async def _replay_exactly(target, workload, count):
    """A replayer bounded by arrival count (rate high => instant)."""
    replayer = OpenLoopReplayer(
        [target], workload, rate=10_000.0, duration=10.0, seed=1
    )
    # Patch the schedule to exactly `count` arrivals.
    real = poisson_arrivals

    def bounded(rate, *, duration=None, seed=0, start=0.0):
        return real(rate, count=count, seed=seed, start=start)

    import repro.loadgen.replayer as replayer_module
    original = replayer_module.poisson_arrivals
    replayer_module.poisson_arrivals = bounded
    try:
        return await replayer.run()
    finally:
        replayer_module.poisson_arrivals = original


def test_replayer_validates_targets_and_rates():
    workload = MixedWorkload(
        [TrafficClass("query", 1.0, lambda rng: {"op": "ping"})]
    )
    with pytest.raises(ValueError, match="positive"):
        OpenLoopReplayer([object()], workload, rate=0.0, duration=1.0)
    with pytest.raises(ValueError, match="no targets"):
        OpenLoopReplayer({"other": [object()]}, workload, rate=1.0, duration=1.0)
    with pytest.raises(ValueError, match="no targets"):
        OpenLoopReplayer([], workload, rate=1.0, duration=1.0)


def test_load_result_combine_merges_classes_and_sums_rates():
    def result_for(name, rate, latencies):
        stats = ClassStats(name)
        for value in latencies:
            stats.histogram.record(value)
        stats.sent = stats.completed = len(latencies)
        return LoadResult(rate, 1.0, 1.0, {name: stats})

    combined = LoadResult.combine([
        result_for("query", 100.0, [0.001, 0.002]),
        result_for("append", 0.5, [1.0]),
        result_for("query", 50.0, [0.003]),
    ])
    assert combined.offered_rate == 150.5
    assert set(combined.classes) == {"query", "append"}
    assert combined.classes["query"].sent == 3
    assert combined.sent == 4 and combined.completed == 4
    with pytest.raises(ValueError):
        LoadResult.combine([])


# --------------------------------------------------------------------------- #
# Knee finding                                                                #
# --------------------------------------------------------------------------- #


def _point(rate, tail, completed=100, sent=100, errors=0):
    stats = ClassStats("query")
    # 10% of samples at `tail` puts the p99 squarely inside the tail bucket.
    for _ in range(90):
        stats.histogram.record(tail / 10)
    for _ in range(10):
        stats.histogram.record(tail)
    stats.sent = sent
    stats.completed = completed
    stats.protocol_errors = errors
    return SweepPoint(rate, LoadResult(rate, 1.0, 1.0, {"query": stats}))


def test_find_knee_locates_the_saturation_boundary():
    points = [
        _point(100.0, 0.005),
        _point(200.0, 0.008),
        _point(400.0, 0.900),            # tail blows through the SLO
        _point(800.0, 5.0, completed=40),  # and completion collapses
    ]
    knee = find_knee(points, slo_seconds=0.1)
    assert knee["max_rate_within_slo"] == 200.0
    assert knee["knee_rate"] == 400.0
    verdicts = [row["within_slo"] for row in knee["points"]]
    assert verdicts == [True, True, False, False]

    table = render_sweep(knee)
    assert "SATURATED" in table and "200.0/s" in table and "400.0/s" in table


def test_find_knee_never_saturated_and_error_points():
    healthy = find_knee([_point(10.0, 0.001)], slo_seconds=0.1)
    assert healthy["knee_rate"] is None
    assert healthy["max_rate_within_slo"] == 10.0
    assert "not reached" in render_sweep(healthy)

    errored = find_knee(
        [_point(10.0, 0.001, errors=3)], slo_seconds=0.1
    )
    assert errored["max_rate_within_slo"] is None


# --------------------------------------------------------------------------- #
# End to end: replayer over the real TCP stack                                #
# --------------------------------------------------------------------------- #


def test_replayer_drives_the_real_tcp_server(tmp_path):
    catalog = CubeCatalog(str(tmp_path / "cubes"))
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["d0", "d1"])
    values = {"d0": ["s1", "s2"], "d1": ["p1", "p2"]}

    async def scenario():
        async with AsyncCubeServer(catalog, query_workers=2) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            connections = [
                await LineConnection.open("127.0.0.1", port) for _ in range(2)
            ]
            try:
                mix = serving_mix(
                    "sales", values,
                    append_weight=0.0, compact_weight=0.0, seed=2,
                )
                result = await OpenLoopReplayer(
                    connections, mix, rate=200.0, duration=0.5, seed=2,
                    request_timeout=10.0,
                ).run()
                assert result.errors == 0
                assert result.completed == result.sent > 50
                assert result.percentile("query", 50) < 0.5
                # The server's own histogram saw the same traffic.
                latency = server.stats()["latency"]["query"]
                assert latency["count"] >= result.completed
            finally:
                for connection in connections:
                    await connection.close()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())
