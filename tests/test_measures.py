"""Tests for the measure framework (repro.core.measures)."""

from __future__ import annotations

import pytest

from repro import Relation
from repro.core.errors import MeasureError
from repro.core.measures import (
    AvgMeasure,
    CountMeasure,
    IcebergCondition,
    MaxMeasure,
    MeasureSet,
    MinMeasure,
    SumMeasure,
)


@pytest.fixture
def priced_relation():
    rows = [("a",), ("a",), ("b",)]
    return Relation.from_rows(rows, ["dim"], measures={"price": [10.0, 30.0, 5.0]})


def test_count_measure_is_distributive(priced_relation):
    spec = CountMeasure()
    state = spec.create(priced_relation, 0)
    state.merge(spec.create(priced_relation, 1))
    state.merge(spec.create(priced_relation, 2))
    assert state.value() == 3.0
    assert spec.distributive


def test_sum_min_max_measures(priced_relation):
    total = SumMeasure("price").create(priced_relation, 0)
    total.merge(SumMeasure("price").create(priced_relation, 1))
    assert total.value() == 40.0

    low = MinMeasure("price").create(priced_relation, 1)
    low.merge(MinMeasure("price").create(priced_relation, 2))
    assert low.value() == 5.0

    high = MaxMeasure("price").create(priced_relation, 0)
    high.merge(MaxMeasure("price").create(priced_relation, 1))
    assert high.value() == 30.0


def test_avg_measure_is_algebraic(priced_relation):
    spec = AvgMeasure("price")
    assert not spec.distributive
    state = spec.create(priced_relation, 0)
    state.merge(spec.create(priced_relation, 1))
    state.merge(spec.create(priced_relation, 2))
    assert state.value() == pytest.approx(15.0)


def test_states_reject_cross_measure_merges(priced_relation):
    count = CountMeasure().create(priced_relation, 0)
    total = SumMeasure("price").create(priced_relation, 0)
    with pytest.raises(MeasureError):
        count.merge(total)


def test_measure_set_aggregation_and_clone(priced_relation):
    measures = MeasureSet([SumMeasure("price"), AvgMeasure("price")])
    states = measures.create_states(priced_relation, 0)
    clone = measures.clone_states(states)
    measures.merge_states(states, measures.create_states(priced_relation, 1))
    values = measures.values(states)
    assert values["sum(price)"] == 40.0
    assert values["avg(price)"] == pytest.approx(20.0)
    # The clone must be unaffected by merging into the original states.
    original = measures.values(clone)
    assert original["sum(price)"] == 10.0


def test_measure_set_rejects_duplicates():
    with pytest.raises(MeasureError):
        MeasureSet([SumMeasure("price"), SumMeasure("price")])


def test_iceberg_condition_validation_and_checks():
    with pytest.raises(MeasureError):
        IcebergCondition(min_sup=0)
    condition = IcebergCondition(min_sup=2)
    assert condition.accepts_count(2)
    assert not condition.accepts_count(1)
    assert condition.accepts(3, {})
    rich = IcebergCondition(min_sup=1, payload_predicate=lambda m: m["sum(price)"] > 20)
    assert rich.accepts(1, {"sum(price)": 30.0})
    assert not rich.accepts(1, {"sum(price)": 10.0})


def test_avg_of_empty_group_is_an_error(priced_relation):
    spec = AvgMeasure("price")
    state = spec.create(priced_relation, 0)
    state.count = 0
    with pytest.raises(MeasureError):
        state.value()
