"""Tests for the MultiWay dense-subspace engine and the MM-Cubing family."""

from __future__ import annotations

import pytest

from repro.algorithms.base import CubingOptions, get_algorithm
from repro.algorithms.multiway import DenseSubspace
from repro.core.measures import MeasureSet, SumMeasure
from repro.core.validate import reference_closed_cube, reference_iceberg_cube
from repro import Relation

from conftest import random_relation


@pytest.fixture
def dense_relation():
    rows = [
        (0, 0), (0, 0), (0, 1), (1, 0), (1, 1), (1, 1), (2, 0),
    ]
    return Relation.from_rows(rows, ["A", "B"])


def test_dense_subspace_base_and_views(dense_relation):
    subspace = DenseSubspace(
        dense_relation,
        tids=list(range(dense_relation.num_tuples)),
        dims=[0, 1],
        dense_values={0: [0, 1], 1: [0, 1]},
        track_closedness=False,
        measures=MeasureSet(),
    )
    views = dict(subspace.views())
    # The apex view (no axes) must aggregate every tuple exactly once.
    apex = views[()]
    assert apex[()].count == dense_relation.num_tuples
    # The one-axis view on A must reproduce per-value counts for dense values.
    view_a = views[(0,)]
    slot_of_zero = 1  # first dense value gets slot 1
    assert view_a[(slot_of_zero,)].count == 3


def test_dense_subspace_skips_other_slot_on_output(dense_relation):
    subspace = DenseSubspace(
        dense_relation,
        tids=list(range(dense_relation.num_tuples)),
        dims=[0, 1],
        dense_values={0: [0, 1], 1: [0, 1]},  # value 2 on A is not dense
        track_closedness=False,
        measures=MeasureSet(),
    )
    assignments = [assignment for assignment, _ in subspace.iter_output_cells()]
    assert all(2 not in assignment.values() or assignment.get(0) != 2 for assignment in assignments)
    # No emitted assignment may reference the OTHER slot's fabricated value.
    for assignment, cell in subspace.iter_output_cells():
        assert None not in assignment.values()
        assert cell.count >= 1


def test_dense_subspace_carries_measures(dense_relation):
    relation = Relation.from_rows(
        [(0, 0), (0, 1), (1, 0)], ["A", "B"], measures={"m": [1.0, 2.0, 4.0]}
    )
    measures = MeasureSet([SumMeasure("m")])
    subspace = DenseSubspace(
        relation, [0, 1, 2], [0, 1], {0: [0, 1], 1: [0, 1]}, False, measures
    )
    views = dict(subspace.views())
    apex = views[()][()]
    assert measures.values(apex.measures)["sum(m)"] == 7.0


def test_mm_cubing_matches_oracle(small_skewed_relation):
    for min_sup in (1, 2, 3):
        expected = reference_iceberg_cube(small_skewed_relation, min_sup)
        cube = get_algorithm("mm-cubing", CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_c_cubing_mm_matches_oracle(small_skewed_relation):
    for min_sup in (1, 2, 3):
        expected = reference_closed_cube(small_skewed_relation, min_sup)
        cube = get_algorithm("c-cubing-mm", CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_c_cubing_mm_uses_closure_shortcut(small_skewed_relation):
    algo = get_algorithm("c-cubing-mm", CubingOptions(min_sup=2))
    algo.run(small_skewed_relation)
    assert algo.counters.get("closure_shortcuts", 0) > 0


def test_mm_cubing_supports_payload_measures():
    relation = Relation.from_rows(
        [("a", "x"), ("a", "y"), ("b", "x")],
        ["d0", "d1"],
        measures={"amount": [1.0, 2.0, 4.0]},
    )
    options = CubingOptions(min_sup=1, measures=MeasureSet([SumMeasure("amount")]))
    cube = get_algorithm("mm-cubing", options).run(relation).cube
    assert cube[(0, None)].measures["sum(amount)"] == 3.0
    assert cube[(None, None)].measures["sum(amount)"] == 7.0


def test_mm_dense_array_cap_forces_evictions():
    relation = random_relation(5, max_dims=4, max_cardinality=4, max_tuples=40)
    algo = get_algorithm("mm-cubing", CubingOptions(min_sup=1))
    algo.max_dense_cells = 4
    cube = algo.run(relation).cube
    expected = reference_iceberg_cube(relation, 1)
    assert expected.same_cells(cube)


@pytest.mark.parametrize("seed", range(6))
def test_mm_family_on_random_relations(seed):
    relation = random_relation(seed + 300, max_dims=4, max_cardinality=4, max_tuples=35)
    for min_sup in (1, 2):
        expected_iceberg = reference_iceberg_cube(relation, min_sup)
        expected_closed = reference_closed_cube(relation, min_sup)
        mm = get_algorithm("mm-cubing", CubingOptions(min_sup=min_sup)).run(relation).cube
        cmm = get_algorithm("c-cubing-mm", CubingOptions(min_sup=min_sup)).run(relation).cube
        assert expected_iceberg.same_cells(mm)
        assert expected_closed.same_cells(cmm)


def test_mm_initial_collapsed(small_skewed_relation):
    cube = get_algorithm(
        "c-cubing-mm", CubingOptions(min_sup=1, initial_collapsed=(1,))
    ).run(small_skewed_relation).cube
    expected = get_algorithm(
        "naive", CubingOptions(min_sup=1, closed=True, initial_collapsed=(1,))
    ).run(small_skewed_relation).cube
    assert expected.same_cells(cube)
