"""Tests for the oracle algorithm and the paper's running example (Table 1)."""

from __future__ import annotations

import pytest

from repro.algorithms.base import CubingOptions, get_algorithm
from repro.core.errors import AlgorithmError
from repro.core.measures import MeasureSet, SumMeasure
from repro import Relation


def run(relation, min_sup=1, closed=False, **kwargs):
    options = CubingOptions(min_sup=min_sup, closed=closed, **kwargs)
    return get_algorithm("naive", options).run(relation).cube


def test_table1_closed_iceberg_cells(paper_table1):
    """Example 1 of the paper, checked cell by cell."""
    cube = run(paper_table1, min_sup=2, closed=True)
    # Encoded values: a1 -> 0 on A, b1 -> 0 on B, c1 -> 0 on C.
    cell1 = (0, 0, 0, None)   # (a1, b1, c1, *) : 2
    cell2 = (0, None, None, None)  # (a1, *, *, *) : 3
    assert cube.count_of(cell1) == 2
    assert cube.count_of(cell2) == 3
    # cell3 = (a1, *, c1, *) is covered by cell1; cell4 fails the iceberg test.
    assert (0, None, 0, None) not in cube
    assert (0, 1, 1, 1) not in cube
    assert len(cube) == 2


def test_table1_full_cube_vs_iceberg(paper_table1):
    full = run(paper_table1, min_sup=1)
    iceberg = run(paper_table1, min_sup=2)
    assert len(full) > len(iceberg)
    # Every iceberg cell appears in the full cube with the same count.
    for cell, stats in iceberg.items():
        assert full.count_of(cell) == stats.count


def test_apex_cell_always_present_for_min_sup_one(small_skewed_relation):
    cube = run(small_skewed_relation)
    assert cube.count_of((None, None, None)) == small_skewed_relation.num_tuples


def test_closed_cube_is_subset_of_iceberg_cube(small_skewed_relation):
    closed = run(small_skewed_relation, min_sup=2, closed=True)
    iceberg = run(small_skewed_relation, min_sup=2)
    for cell, stats in closed.items():
        assert iceberg.count_of(cell) == stats.count
    assert len(closed) <= len(iceberg)


def test_payload_measures_are_aggregated():
    relation = Relation.from_rows(
        [("a", "x"), ("a", "y"), ("b", "x")],
        ["d0", "d1"],
        measures={"amount": [1.0, 2.0, 4.0]},
    )
    options = CubingOptions(min_sup=1, measures=MeasureSet([SumMeasure("amount")]))
    cube = get_algorithm("naive", options).run(relation).cube
    assert cube[(0, None)].measures["sum(amount)"] == 3.0
    assert cube[(None, None)].measures["sum(amount)"] == 7.0


def test_initial_collapsed_dimensions_never_appear(small_skewed_relation):
    cube = run(small_skewed_relation, initial_collapsed=(0,))
    assert all(cell[0] is None for cell in cube)
    # Counts still aggregate over the collapsed dimension.
    assert cube.count_of((None, None, None)) == small_skewed_relation.num_tuples


def test_naive_closed_registration_forces_closed(small_skewed_relation):
    algo = get_algorithm("naive-closed", CubingOptions(min_sup=1))
    cube = algo.run(small_skewed_relation).cube
    direct = run(small_skewed_relation, closed=True)
    assert direct.same_cells(cube)


def test_invalid_options_rejected(small_skewed_relation):
    with pytest.raises(AlgorithmError):
        get_algorithm("buc", CubingOptions(closed=True)).run(small_skewed_relation)
    with pytest.raises(AlgorithmError):
        get_algorithm("naive", CubingOptions(min_sup=0)).run(small_skewed_relation)
