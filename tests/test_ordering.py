"""Tests for dimension-ordering heuristics (repro.core.ordering)."""

from __future__ import annotations

import math

import pytest

from repro import Relation
from repro.core.errors import SchemaError
from repro.core.ordering import (
    ORDERINGS,
    cardinality_order,
    entropy_order,
    entropy_score,
    original_order,
    resolve_order,
)


@pytest.fixture
def relation():
    # dim 0: cardinality 4, uniform; dim 1: cardinality 2, skewed; dim 2: constant.
    columns = [
        [0, 1, 2, 3, 0, 1, 2, 3],
        [0, 0, 0, 0, 0, 0, 0, 1],
        [0, 0, 0, 0, 0, 0, 0, 0],
    ]
    return Relation.from_columns(columns)


def test_original_order_is_identity(relation):
    assert original_order(relation) == [0, 1, 2]


def test_cardinality_order_descending(relation):
    assert cardinality_order(relation) == [0, 1, 2]


def test_entropy_score_matches_formula(relation):
    # dim 1 has counts {0: 7, 1: 1}: E = -(7*log7 + 1*log1)
    expected = -(7 * math.log(7))
    assert entropy_score(relation, 1) == pytest.approx(expected)
    # A uniform dimension has higher (less negative) E than a skewed one of
    # the same size only when value counts are smaller; compare directly:
    assert entropy_score(relation, 0) > entropy_score(relation, 1)


def test_entropy_order_prefers_uniform_dimensions(relation):
    order = entropy_order(relation)
    assert order[0] == 0          # uniform dimension first
    assert order[-1] == 2         # constant dimension last


def test_resolve_order_accepts_names_permutations_and_callables(relation):
    assert resolve_order(relation, None) == [0, 1, 2]
    assert resolve_order(relation, "cardinality") == [0, 1, 2]
    assert resolve_order(relation, [2, 0, 1]) == [2, 0, 1]
    assert resolve_order(relation, lambda r: [1, 0, 2]) == [1, 0, 2]
    assert set(ORDERINGS) == {"original", "cardinality", "entropy"}


def test_resolve_order_rejects_bad_inputs(relation):
    with pytest.raises(SchemaError):
        resolve_order(relation, "no-such-order")
    with pytest.raises(SchemaError):
        resolve_order(relation, [0, 0, 1])
    with pytest.raises(SchemaError):
        resolve_order(relation, [0, 1])
