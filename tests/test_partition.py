"""Tests for the partitioned / external computation driver (Section 6.3)."""

from __future__ import annotations

import pytest

from repro.core.errors import PartitionError
from repro.core.validate import reference_closed_cube, reference_iceberg_cube
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.storage.partition import PartitionedCubeComputer
from repro import Relation


@pytest.fixture
def relation():
    config = SyntheticConfig.uniform(120, 4, 5, skew=1.0, seed=21)
    return generate_relation(config)


def test_partitioned_closed_cube_matches_in_memory(relation):
    expected = reference_closed_cube(relation, min_sup=2)
    computer = PartitionedCubeComputer(algorithm="c-cubing-star", min_sup=2, closed=True)
    cube, report = computer.compute(relation)
    assert expected.same_cells(cube), expected.diff(cube)
    assert report.num_partitions == relation.cardinality(report.partition_dim)
    assert sum(report.partition_sizes.values()) == relation.num_tuples


def test_partitioned_iceberg_cube_matches_in_memory(relation):
    expected = reference_iceberg_cube(relation, min_sup=2)
    computer = PartitionedCubeComputer(algorithm="buc", min_sup=2, closed=False)
    cube, _report = computer.compute(relation)
    assert expected.same_cells(cube), expected.diff(cube)


def test_explicit_partition_dimension(relation):
    expected = reference_closed_cube(relation, min_sup=1)
    computer = PartitionedCubeComputer(algorithm="c-cubing-star-array", min_sup=1)
    cube, report = computer.compute(relation, partition_dim=2)
    assert report.partition_dim == 2
    assert expected.same_cells(cube)


def test_spilling_respects_memory_budget(relation, tmp_path):
    computer = PartitionedCubeComputer(
        algorithm="c-cubing-star",
        min_sup=2,
        memory_budget_tuples=10,
        spill_dir=str(tmp_path),
    )
    cube, report = computer.compute(relation)
    assert report.spilled_files == report.num_partitions
    assert report.spill_bytes > 0
    assert len(list(tmp_path.iterdir())) == report.num_partitions
    assert reference_closed_cube(relation, 2).same_cells(cube)


def test_no_spill_when_budget_is_large(relation):
    computer = PartitionedCubeComputer(min_sup=1, memory_budget_tuples=10_000)
    _cube, report = computer.compute(relation)
    assert report.spilled_files == 0
    assert report.spill_bytes == 0


def test_partitioning_requires_two_dimensions():
    single = Relation.from_columns([[0, 1, 1]])
    with pytest.raises(PartitionError):
        PartitionedCubeComputer().compute(single)


def test_invalid_partition_dimension(relation):
    with pytest.raises(PartitionError):
        PartitionedCubeComputer().compute(relation, partition_dim=99)


def test_choose_partition_dimension_prefers_high_cardinality(relation):
    computer = PartitionedCubeComputer()
    dim = computer.choose_partition_dimension(relation)
    cards = relation.cardinalities()
    assert cards[dim] == max(cards)
