"""Tests for the partitioned / external computation driver (Section 6.3)."""

from __future__ import annotations

import pytest

from repro.core.errors import PartitionError
from repro.core.validate import reference_closed_cube, reference_iceberg_cube
from repro.datagen.synthetic import SyntheticConfig, generate_relation
from repro.storage.partition import PartitionedCubeComputer
from repro import Relation


@pytest.fixture
def relation():
    config = SyntheticConfig.uniform(120, 4, 5, skew=1.0, seed=21)
    return generate_relation(config)


def test_partitioned_closed_cube_matches_in_memory(relation):
    expected = reference_closed_cube(relation, min_sup=2)
    computer = PartitionedCubeComputer(algorithm="c-cubing-star", min_sup=2, closed=True)
    cube, report = computer.compute(relation)
    assert expected.same_cells(cube), expected.diff(cube)
    assert report.num_partitions == relation.cardinality(report.partition_dim)
    assert sum(report.partition_sizes.values()) == relation.num_tuples


def test_partitioned_iceberg_cube_matches_in_memory(relation):
    expected = reference_iceberg_cube(relation, min_sup=2)
    computer = PartitionedCubeComputer(algorithm="buc", min_sup=2, closed=False)
    cube, _report = computer.compute(relation)
    assert expected.same_cells(cube), expected.diff(cube)


def test_explicit_partition_dimension(relation):
    expected = reference_closed_cube(relation, min_sup=1)
    computer = PartitionedCubeComputer(algorithm="c-cubing-star-array", min_sup=1)
    cube, report = computer.compute(relation, partition_dim=2)
    assert report.partition_dim == 2
    assert expected.same_cells(cube)


def test_spilling_respects_memory_budget(relation, tmp_path):
    computer = PartitionedCubeComputer(
        algorithm="c-cubing-star",
        min_sup=2,
        memory_budget_tuples=10,
        spill_dir=str(tmp_path),
    )
    cube, report = computer.compute(relation)
    assert report.spilled_files == report.num_partitions
    assert report.spill_bytes > 0
    assert len(list(tmp_path.iterdir())) == report.num_partitions
    assert reference_closed_cube(relation, 2).same_cells(cube)


def test_no_spill_when_budget_is_large(relation):
    computer = PartitionedCubeComputer(min_sup=1, memory_budget_tuples=10_000)
    _cube, report = computer.compute(relation)
    assert report.spilled_files == 0
    assert report.spill_bytes == 0


def test_partitioning_requires_two_dimensions():
    single = Relation.from_columns([[0, 1, 1]])
    with pytest.raises(PartitionError):
        PartitionedCubeComputer().compute(single)


def test_invalid_partition_dimension(relation):
    with pytest.raises(PartitionError):
        PartitionedCubeComputer().compute(relation, partition_dim=99)


def test_choose_partition_dimension_prefers_high_cardinality(relation):
    computer = PartitionedCubeComputer()
    dim = computer.choose_partition_dimension(relation)
    cards = relation.cardinalities()
    assert cards[dim] == max(cards)


# --------------------------------------------------------------------------- #
# Spill-path hygiene                                                           #
# --------------------------------------------------------------------------- #


def test_spill_files_use_highest_pickle_protocol(relation, tmp_path):
    import pickle
    import pickletools

    computer = PartitionedCubeComputer(
        min_sup=1, memory_budget_tuples=10, spill_dir=str(tmp_path)
    )
    computer.compute(relation)
    spilled = sorted(tmp_path.iterdir())
    assert spilled, "the small budget must force a spill"
    for path in spilled:
        payload = path.read_bytes()
        # Protocol >= 2 starts with the PROTO opcode carrying the version.
        opcode, version, _ = next(pickletools.genops(payload))
        assert opcode.name == "PROTO"
        assert version == pickle.HIGHEST_PROTOCOL
        with open(path, "rb") as handle:
            rows = pickle.load(handle)
        assert rows, "each spill file holds one partition's rows"


def test_spill_cleans_up_files_on_error(relation, tmp_path, monkeypatch):
    import pickle as pickle_module

    from repro.storage import partition as partition_module

    calls = {"count": 0}
    real_dump = pickle_module.dump

    def failing_dump(obj, handle, protocol=None):
        calls["count"] += 1
        if calls["count"] == 3:
            raise OSError("disk full")
        return real_dump(obj, handle, protocol=protocol)

    monkeypatch.setattr(partition_module.pickle, "dump", failing_dump)
    computer = PartitionedCubeComputer(
        min_sup=1, memory_budget_tuples=10, spill_dir=str(tmp_path)
    )
    with pytest.raises(OSError, match="disk full"):
        computer.compute(relation)
    assert list(tmp_path.iterdir()) == [], (
        "an aborted spill must remove every file it wrote, including the "
        "partially written one"
    )


# --------------------------------------------------------------------------- #
# Per-partition incremental refresh                                            #
# --------------------------------------------------------------------------- #


def test_refresh_matches_full_recompute(relation):
    computer = PartitionedCubeComputer(algorithm="c-cubing-star", min_sup=1)
    partition_dim = 0
    previous, _ = computer.compute(relation, partition_dim=partition_dim)

    start_tid = relation.num_tuples
    extra = [relation.row(tid) for tid in range(6)]  # rows reusing seen values
    relation.append_rows([tuple(relation.decode(d, row[d]) for d in range(len(row)))
                          for row in extra])
    refreshed, report = computer.refresh(
        relation, previous, partition_dim, start_tid
    )
    expected, _ = computer.compute(relation, partition_dim=partition_dim)
    assert refreshed.same_cells(expected), refreshed.diff(expected)
    assert report.refreshed_partitions is not None
    touched = {relation.columns[partition_dim][tid]
               for tid in range(start_tid, relation.num_tuples)}
    assert set(report.refreshed_partitions) == touched


def test_refresh_only_recomputes_touched_partitions(relation):
    computer = PartitionedCubeComputer(min_sup=1)
    partition_dim = 0
    previous, _ = computer.compute(relation, partition_dim=partition_dim)
    start_tid = relation.num_tuples
    pinned_value = relation.decode(partition_dim, relation.columns[partition_dim][0])
    row = tuple(relation.decode(d, relation.columns[d][0])
                for d in range(relation.num_dimensions))
    relation.append_rows([(pinned_value,) + row[1:]])
    _, report = computer.refresh(relation, previous, partition_dim, start_tid)
    assert len(report.refreshed_partitions) == 1
