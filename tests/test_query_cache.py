"""Focused tests for the serving layer's LRU cache (repro.query.cache).

Complements the engine-level cache tests in test_query_engine.py with direct
coverage of eviction order, the ``capacity == 0`` disablement contract, and
the counter bookkeeping ``stats()`` reports.
"""

from __future__ import annotations

import pytest

from repro import Relation, compute_closed_cube, open_query_engine
from repro.query.cache import LRUCache


def test_eviction_follows_least_recently_used_order():
    cache = LRUCache(3)
    for key in "abc":
        cache.put(key, key.upper())
    # Touch "a" (get) and "b" (re-put): "c" becomes the eviction victim.
    assert cache.get("a") == "A"
    cache.put("b", "B2")
    cache.put("d", "D")
    assert "c" not in cache
    assert [key for key in "abd" if key in cache] == ["a", "b", "d"]
    assert cache.evictions == 1
    # Next overflow evicts "a" — the oldest untouched entry, not insert order.
    cache.put("e", "E")
    assert "a" not in cache and "b" in cache
    assert cache.evictions == 2


def test_eviction_sequence_is_stable_under_repeated_overflow():
    cache = LRUCache(2)
    evicted = []
    keys = [1, 2, 3, 4, 5]
    for key in keys:
        cache.put(key, key)
        evicted.append(cache.evictions)
    assert evicted == [0, 0, 1, 2, 3]
    assert 4 in cache and 5 in cache and len(cache) == 2


def test_put_refresh_does_not_evict():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh, not insert: no overflow
    assert cache.evictions == 0
    assert cache.get("a") == 10 and cache.get("b") == 2


def test_capacity_zero_disables_storage_and_counts_misses():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert len(cache) == 0
    assert cache.get("a") is None
    assert cache.get("a", default="fallback") == "fallback"
    assert cache.hits == 0 and cache.misses == 2 and cache.evictions == 0
    assert cache.hit_rate == 0.0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(-1)


def test_clear_preserves_counters():
    cache = LRUCache(2)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("missing") is None
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1 and cache.misses == 1


def test_stats_reports_counters_and_hit_rate():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    stats = cache.stats()
    assert stats["capacity"] == 2 and stats["entries"] == 1
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["hit_rate"] == 0.5


def test_engine_with_zero_cache_answers_correctly_without_caching():
    rows = [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a1", "b2", "c1")]
    relation = Relation.from_rows(rows, ["A", "B", "C"])
    cube = compute_closed_cube(relation, min_sup=2)
    cached = open_query_engine(cube, cache_size=1024)
    uncached = open_query_engine(cube, cache_size=0)
    cells = [(0, None, None), (0, 0, None), (None, None, 0), (0, None, 0)]
    for cell in cells:
        for _ in range(2):
            assert uncached.point(cell).count == cached.point(cell).count
    assert uncached.cache.hits == 0 and len(uncached.cache) == 0
    # Every repeat went back to closure resolution.
    assert uncached.counters["closure_lookups"] == 2 * len(cells)


def test_engine_eviction_order_drives_closure_lookups():
    rows = [("a1", "b1", "c1"), ("a1", "b1", "c2"), ("a1", "b2", "c1")]
    relation = Relation.from_rows(rows, ["A", "B", "C"])
    engine = open_query_engine(compute_closed_cube(relation, min_sup=1), cache_size=2)
    first, second, third = (0, None, None), (None, 0, None), (None, None, 0)
    engine.point(first)
    engine.point(second)
    engine.point(first)      # refresh: `second` is now least recent
    engine.point(third)      # evicts `second`
    lookups = engine.counters["closure_lookups"]
    engine.point(first)      # still cached
    assert engine.counters["closure_lookups"] == lookups
    engine.point(second)     # evicted: must resolve again
    assert engine.counters["closure_lookups"] == lookups + 1


def test_keys_and_discard_support_targeted_invalidation():
    cache = LRUCache(4)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.keys() == ["a", "b"]
    assert cache.discard("a") is True
    assert cache.discard("a") is False, "discarding a missing key reports it"
    assert "a" not in cache
    stats = cache.stats()
    assert stats["invalidations"] == 1
    assert stats["evictions"] == 0, "discards are not evictions"


def test_engine_invalidate_drops_only_affected_answers():
    from repro import Relation, compute_closed_cube, open_query_engine

    relation = Relation.from_rows([("a", "x"), ("a", "y"), ("b", "x")])
    engine = open_query_engine(compute_closed_cube(relation, min_sup=1))
    a_cell = (0, None)
    b_cell = (1, None)
    engine.point(a_cell)
    engine.point(b_cell)
    # A changed cell under (a, *) invalidates it but leaves (b, *) cached.
    dropped = engine.invalidate([(0, 5)])
    assert dropped == 1
    assert a_cell not in engine.cache
    assert b_cell in engine.cache
    # The apex answer depends on every cell, so any change would drop it.
    apex = (None, None)
    engine.point(apex)
    assert engine.invalidate([(0, 9)]) >= 1
    assert apex not in engine.cache
