"""Tests for the closure-query serving layer (:mod:`repro.query`).

The load-bearing property here is losslessness under serving: for *every*
cell of the lattice — materialised or not — the :class:`QueryEngine` must
return exactly what direct recomputation with the naive oracle returns
(the count when the cell satisfies the iceberg condition, "not answerable"
otherwise).  The property tests below check that exhaustively on random
relations, for both the flat and the partitioned engine.
"""

from __future__ import annotations

import itertools

import pytest

from repro import (
    PartitionedQueryEngine,
    PointQuery,
    Relation,
    RollupQuery,
    SliceQuery,
    compute_closed_cube,
    open_partitioned_query_engine,
    open_query_engine,
)
from repro.core.cube import count_matching_tuples
from repro.core.errors import QueryError
from repro.core.validate import reference_iceberg_cube
from repro.query.cache import LRUCache
from repro.query.index import CubeIndex

from conftest import random_relation


def lattice_cells(relation: Relation, extra_value: bool = True):
    """Every cell of the cube lattice, plus never-seen values when asked."""
    per_dim = []
    for dim in range(relation.num_dimensions):
        values = sorted(set(relation.columns[dim]))
        if extra_value:
            values = values + [max(values) + 1]
        per_dim.append([None] + values)
    return itertools.product(*per_dim)


def expected_answer(relation: Relation, cell, min_sup: int):
    """Direct recomputation: the oracle the engine must agree with."""
    count = count_matching_tuples(relation, cell)
    return count if count >= min_sup else None


# --------------------------------------------------------------------------- #
# Losslessness of the served closed cube                                       #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(8))
def test_engine_matches_naive_recomputation_on_every_lattice_cell(seed):
    relation = random_relation(seed + 300, max_dims=4, max_cardinality=3, max_tuples=25)
    for min_sup in (1, 2):
        cube = compute_closed_cube(relation, min_sup=min_sup)
        engine = open_query_engine(cube)
        for cell in lattice_cells(relation):
            answer = engine.point(cell)
            assert answer.count == expected_answer(relation, cell, min_sup), (
                f"seed={seed} min_sup={min_sup} cell={cell}"
            )


@pytest.mark.parametrize("seed", range(4))
def test_every_iceberg_cell_is_served_exactly(seed):
    relation = random_relation(seed + 400, max_dims=4, max_cardinality=3, max_tuples=30)
    min_sup = 2
    iceberg = reference_iceberg_cube(relation, min_sup)
    engine = open_query_engine(compute_closed_cube(relation, min_sup=min_sup))
    for cell, stats in iceberg.items():
        answer = engine.point(cell)
        assert answer.found and answer.count == stats.count
        assert answer.closure in engine.cube, "closure must be materialised"


def test_index_closure_agrees_with_linear_scan(small_skewed_relation):
    cube = compute_closed_cube(small_skewed_relation, min_sup=1)
    for cell in lattice_cells(small_skewed_relation):
        indexed = cube.closure_query(cell)
        scanned = cube.closure_query_scan(cell)
        assert (indexed is None) == (scanned is None)
        if indexed is not None:
            assert indexed.count == scanned.count


def test_closure_index_maintained_in_place_on_add(paper_table1):
    cube = compute_closed_cube(paper_table1, min_sup=2)
    first = cube.closure_index()
    assert cube.closure_index() is first, "index is cached between reads"
    cube.add((1, 1, 1, 1), 99)
    assert cube.closure_index() is first, (
        "the live index is updated in place, not rebuilt — engines keep it warm"
    )
    assert cube.closure_query((1, 1, 1, 1)).count == 99
    assert (1, 1, 1, 1) in dict(first.specialisations((None, None, None, None)))


# --------------------------------------------------------------------------- #
# Slice and roll-up semantics                                                  #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(4))
def test_slice_enumerates_exactly_the_iceberg_cuboid(seed):
    relation = random_relation(seed + 500, max_dims=4, max_cardinality=3, max_tuples=30)
    if relation.num_dimensions < 2:
        pytest.skip("slice needs two dimensions")
    min_sup = 2
    engine = open_query_engine(compute_closed_cube(relation, min_sup=min_sup))
    iceberg = reference_iceberg_cube(relation, min_sup)
    fixed_dim, group_dim = 0, relation.num_dimensions - 1
    for fixed_value in sorted(set(relation.columns[fixed_dim])):
        answers = engine.slice({fixed_dim: fixed_value}, group_by=[group_dim])
        got = {answer.cell: answer.count for answer in answers}
        expected = {
            cell: stats.count
            for cell, stats in iceberg.items()
            if cell[fixed_dim] == fixed_value
            and cell[group_dim] is not None
            and all(
                value is None
                for dim, value in enumerate(cell)
                if dim not in (fixed_dim, group_dim)
            )
        }
        assert got == expected


def test_slice_with_empty_group_by_is_a_point(paper_table1):
    engine = open_query_engine(compute_closed_cube(paper_table1, min_sup=2))
    answers = engine.slice({0: 0})
    assert len(answers) == 1
    assert answers[0].count == engine.point((0, None, None, None)).count == 3


def test_rollup_collapses_dimensions(paper_table1):
    engine = open_query_engine(compute_closed_cube(paper_table1, min_sup=2))
    # (a1, b1, c1, *) rolled up on B and C becomes (a1, *, *, *): count 3.
    answer = engine.rollup((0, 0, 0, None), dims=(1, 2))
    assert answer.cell == (0, None, None, None)
    assert answer.count == 3


def test_query_validation_errors(paper_table1):
    engine = open_query_engine(compute_closed_cube(paper_table1, min_sup=2))
    with pytest.raises(QueryError):
        engine.point((0, None))  # wrong arity
    with pytest.raises(QueryError):
        engine.point((0, None, -3, None))  # negative encoded value
    with pytest.raises(QueryError):
        engine.slice({0: 0}, group_by=[0])  # group-by overlaps fixed
    with pytest.raises(QueryError):
        engine.rollup((0, 0, 0, None), dims=(9,))  # out-of-range dimension
    with pytest.raises(QueryError):
        engine.execute("not a query")  # type: ignore[arg-type]


# --------------------------------------------------------------------------- #
# Batch execution and caching                                                  #
# --------------------------------------------------------------------------- #


def test_execute_many_preserves_order_and_shapes(paper_table1):
    engine = open_query_engine(compute_closed_cube(paper_table1, min_sup=2))
    queries = [
        PointQuery((0, None, 0, None)),
        RollupQuery((0, 0, 0, None), (2,)),
        SliceQuery.of({0: 0}, [1]),
        PointQuery((1, None, None, None)),  # pruned: below min_sup
    ]
    results = engine.execute_many(queries)
    assert results[0].count == 2
    assert results[1].count == 2
    assert isinstance(results[2], list) and results[2][0].count == 2
    assert results[3].count is None and not results[3].found


def test_cache_serves_repeats_without_new_lookups(paper_table1):
    engine = open_query_engine(compute_closed_cube(paper_table1, min_sup=2))
    for _ in range(5):
        engine.point((0, None, 0, None))
    assert engine.counters["closure_lookups"] == 1
    assert engine.cache.hits == 4
    # Negative answers are cached too.
    for _ in range(3):
        engine.point((1, None, None, None))
    assert engine.counters["closure_lookups"] == 2


def test_cache_capacity_zero_disables_caching(paper_table1):
    engine = open_query_engine(compute_closed_cube(paper_table1, min_sup=2), cache_size=0)
    for _ in range(3):
        engine.point((0, None, 0, None))
    assert engine.counters["closure_lookups"] == 3
    assert engine.cache.hits == 0


def test_lru_cache_eviction_order():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a": now "b" is least recent
    cache.put("c", 3)
    assert cache.evictions == 1
    assert cache.get("b") is None and cache.get("a") == 1 and cache.get("c") == 3
    with pytest.raises(ValueError):
        LRUCache(-1)


# --------------------------------------------------------------------------- #
# Index structure                                                              #
# --------------------------------------------------------------------------- #


def test_index_specialisation_slots_match_definition(small_skewed_relation):
    cube = compute_closed_cube(small_skewed_relation, min_sup=1)
    index = CubeIndex.from_cube(cube)
    from repro.core.cell import is_specialisation

    for cell in lattice_cells(small_skewed_relation, extra_value=False):
        via_index = {index.cell_at(slot) for slot in index.specialisation_slots(cell)}
        via_scan = {other for other in cube if is_specialisation(cell, other)}
        assert via_index == via_scan


def test_index_rejects_wrong_arity(paper_table1):
    index = CubeIndex.from_cube(compute_closed_cube(paper_table1, min_sup=2))
    with pytest.raises(QueryError):
        index.closure_slot((0, None))
    with pytest.raises(QueryError):
        index.values_on_dimension(17)


# --------------------------------------------------------------------------- #
# Partitioned serving                                                          #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(4))
def test_partitioned_engine_matches_flat_engine(seed):
    relation = random_relation(seed + 600, max_dims=4, max_cardinality=3, max_tuples=30)
    if relation.num_dimensions < 2:
        pytest.skip("partitioning needs two dimensions")
    min_sup = 2
    flat = open_query_engine(compute_closed_cube(relation, min_sup=min_sup))
    engine, report = open_partitioned_query_engine(relation, min_sup=min_sup)
    assert report.num_partitions == len(
        set(relation.columns[report.partition_dim])
    )
    for cell in lattice_cells(relation):
        assert engine.point(cell).count == flat.point(cell).count, cell


def test_partitioned_slice_and_batch_routing(small_skewed_relation):
    min_sup = 1
    flat = open_query_engine(compute_closed_cube(small_skewed_relation, min_sup=min_sup))
    engine, report = open_partitioned_query_engine(small_skewed_relation, min_sup=min_sup)
    pdim = report.partition_dim
    values = sorted(set(small_skewed_relation.columns[pdim]))
    # Slices pinned to one partition value touch only that shard.
    for value in values:
        flat_answers = flat.slice({pdim: value}, group_by=[(pdim + 1) % 3])
        part_answers = engine.slice({pdim: value}, group_by=[(pdim + 1) % 3])
        assert [(a.cell, a.count) for a in part_answers] == [
            (a.cell, a.count) for a in flat_answers
        ]
    # Batch execution preserves input order across shard-grouped routing.
    queries = [
        PointQuery((None, None, None)),
        SliceQuery.of({pdim: values[0]}, [(pdim + 1) % 3]),
        PointQuery(tuple(values[0] if dim == pdim else None for dim in range(3))),
    ]
    flat_results = flat.execute_many(queries)
    part_results = engine.execute_many(queries)
    assert part_results[0].count == flat_results[0].count
    assert [a.count for a in part_results[1]] == [a.count for a in flat_results[1]]
    assert part_results[2].count == flat_results[2].count


def test_partitioned_engine_shard_layout(small_skewed_relation):
    engine, report = open_partitioned_query_engine(small_skewed_relation, min_sup=1)
    sizes = engine.shard_sizes()
    # Every materialised cell lands in exactly one shard.
    assert sum(sizes.values()) == len(engine.cube)
    # Cells fixing the partition dimension live in their value's shard.
    for cell in engine.cube:
        value = cell[engine.partition_dim]
        assert cell in engine.shards[value].cube
    with pytest.raises(QueryError):
        PartitionedQueryEngine(engine.cube, partition_dim=99)
