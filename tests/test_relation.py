"""Unit tests for the fact-table substrate (repro.core.relation)."""

from __future__ import annotations

import pytest

from repro.core.errors import EncodingError, SchemaError
from repro.core.relation import Relation, Schema


def test_schema_rejects_duplicates_and_empty():
    with pytest.raises(SchemaError):
        Schema(("a", "a"))
    with pytest.raises(SchemaError):
        Schema((), ())
    schema = Schema(("a", "b"), ("m",))
    assert schema.num_dimensions == 2
    assert schema.num_measures == 1
    assert schema.dimension_index("b") == 1
    assert schema.measure_index("m") == 0
    with pytest.raises(SchemaError):
        schema.dimension_index("zzz")


def test_from_rows_encodes_values_and_decodes_back():
    rows = [("x", 10), ("y", 10), ("x", 20)]
    relation = Relation.from_rows(rows, ["name", "amount"])
    assert relation.num_tuples == 3
    assert relation.num_dimensions == 2
    assert relation.cardinality(0) == 2
    assert relation.cardinality(1) == 2
    assert relation.decode(0, relation.value(0, 0)) == "x"
    assert relation.decode(1, relation.value(2, 1)) == 20


def test_from_rows_rejects_ragged_rows():
    with pytest.raises(SchemaError):
        Relation.from_rows([(1, 2), (1,)])
    with pytest.raises(SchemaError):
        Relation.from_rows([])


def test_from_columns_validates_lengths_and_values():
    relation = Relation.from_columns([[0, 1, 0], [2, 2, 0]])
    assert relation.num_tuples == 3
    with pytest.raises(SchemaError):
        Relation(Schema(("a", "b")), [[0, 1], [0]])
    with pytest.raises(EncodingError):
        Relation.from_columns([[0, -1]])


def test_measures_are_carried_and_validated():
    relation = Relation.from_rows(
        [("a",), ("b",)], ["dim"], measures={"price": [1.5, 2.5]}
    )
    assert relation.schema.measure_names == ("price",)
    assert relation.measure_value(1, 0) == 2.5
    with pytest.raises(SchemaError):
        Relation.from_rows([("a",)], ["dim"], measures={"price": [1.0, 2.0]})


def test_row_and_rows_iteration():
    relation = Relation.from_columns([[0, 1], [1, 0]])
    assert relation.row(0) == (0, 1)
    assert list(relation.rows()) == [(0, 1), (1, 0)]


def test_reorder_dimensions_permutes_columns_and_names():
    relation = Relation.from_rows([(1, "a"), (2, "b")], ["num", "letter"])
    reordered = relation.reorder_dimensions([1, 0])
    assert reordered.schema.dimension_names == ("letter", "num")
    assert reordered.row(0) == (relation.value(0, 1), relation.value(0, 0))
    with pytest.raises(SchemaError):
        relation.reorder_dimensions([0, 0])


def test_select_and_project():
    relation = Relation.from_columns([[0, 1, 2], [3, 4, 5]])
    subset = relation.select([2, 0])
    assert subset.num_tuples == 2
    assert subset.row(0) == (2, 5)
    projected = relation.project([1])
    assert projected.num_dimensions == 1
    assert projected.row(1) == (4,)
    with pytest.raises(SchemaError):
        relation.project([])


def test_csv_round_trip(tmp_path):
    rows = [("x", "u"), ("y", "v"), ("x", "v")]
    relation = Relation.from_rows(rows, ["a", "b"], measures={"m": [1.0, 2.0, 3.0]})
    path = tmp_path / "data.csv"
    relation.to_csv(str(path))
    loaded = Relation.from_csv(str(path), ["a", "b"], ["m"])
    assert loaded.num_tuples == 3
    assert [loaded.decode(0, loaded.value(t, 0)) for t in range(3)] == ["x", "y", "x"]
    assert loaded.measure_columns[0] == [1.0, 2.0, 3.0]


def test_from_csv_missing_column(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b\n1,2\n")
    with pytest.raises(SchemaError):
        Relation.from_csv(str(path), ["a", "missing"])


def test_decode_unknown_code_raises():
    relation = Relation.from_rows([("x",)], ["a"])
    with pytest.raises(EncodingError):
        relation.decode(0, 99)


# --------------------------------------------------------------------------- #
# Append-only growth                                                           #
# --------------------------------------------------------------------------- #


def test_append_rows_reuses_codes_and_grows_dictionaries():
    relation = Relation.from_rows([("a", "x"), ("b", "y")])
    encoder_before = dict(relation.encoder(0))
    start, end = relation.append_rows([("a", "z"), ("c", "x")])
    assert (start, end) == (2, 4)
    assert relation.num_tuples == 4
    # Seen values keep their codes; unseen values extend the dictionary.
    for raw, code in encoder_before.items():
        assert relation.encoder(0)[raw] == code
    assert relation.decode(0, relation.columns[0][2]) == "a"
    assert relation.decode(0, relation.columns[0][3]) == "c"
    assert relation.decode(1, relation.columns[1][2]) == "z"
    # Encoder and decoder stay inverse after growth.
    for dim in range(relation.num_dimensions):
        for raw, code in relation.encoder(dim).items():
            assert relation.decoders[dim][code] == raw


def test_append_rows_with_measures():
    relation = Relation.from_rows([("a",), ("b",)], measures={"m": [1.0, 2.0]})
    relation.append_rows([("c",)], measures={"m": [7]})
    assert relation.measure_columns[0] == [1.0, 2.0, 7.0]
    assert relation.num_tuples == 3


def test_append_rows_validates_input():
    relation = Relation.from_rows([("a", "x")], measures={"m": [1.0]})
    with pytest.raises(SchemaError):
        relation.append_rows([("only-one-value",)], measures={"m": [1.0]})
    with pytest.raises(SchemaError):
        relation.append_rows([("a", "x")])  # missing measure column
    with pytest.raises(SchemaError):
        relation.append_rows([("a", "x")], measures={"m": [1.0, 2.0]})
    with pytest.raises(SchemaError):
        relation.append_rows([("a", "x")], measures={"wrong": [1.0]})
    # A failed validation must not have grown the relation.
    assert relation.num_tuples == 1


def test_append_rows_empty_is_noop():
    relation = Relation.from_rows([("a",)])
    assert relation.append_rows([]) == (1, 1)
    assert relation.num_tuples == 1
