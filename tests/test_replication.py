"""Tests for the replicated serving tier (:mod:`repro.replication`).

The contract under test, per layer:

* **leases** — one writer per cube, epochs bump only on holder change, a
  recorded takeover (not mere expiry) fences the old holder everywhere:
  renewals fail, journal appends fail.
* **tailing** — followers replay the leader's journal into live replicas;
  compactions the replica already replayed are adopted without touching
  data; compactions covering unseen rows force a re-bootstrap; a restart
  over a persisted cursor replays only the journal tail
  (``snapshot_loads == 0``).
* **failover** — an expired lease lets a follower promote: it takes the
  lease at a higher epoch, drains to the tip, and installs its replica
  into a catalog as the new leader.
* **serving** — follower servers answer queries from pinned replica views,
  refuse every mutating op, and report ``replica_lag`` through ``stats()``
  and the TCP ``replica`` verb; :class:`ReplicaSet` routes writes to the
  leader and reads to followers.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time

import pytest

from repro import CubeCatalog
from repro.core.errors import LeaseFencedError, ReplicationError, ServerError
from repro.replication import (
    CubeFollower,
    ReplicaSet,
    ReplicationTailer,
    acquire,
    read,
    release,
    renew,
)
from repro.replication.tailer import POLL_ERRORS_BEFORE_STALE
from repro.server import AsyncCubeServer, serve_tcp
from repro.storage.locks import MANIFEST_LOCK_NAME, ManifestLock

ROWS = [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
SCHEMA = ["A", "B"]


@pytest.fixture
def directory(tmp_path):
    return str(tmp_path / "catalog")


@pytest.fixture
def catalog(directory):
    catalog = CubeCatalog(directory)
    catalog.create("sales", ROWS, schema=SCHEMA)
    return catalog


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------- #
# Leases                                                                       #
# --------------------------------------------------------------------------- #


def test_acquire_renew_release(directory, catalog):
    lease = acquire(directory, "sales", "writer-1")
    assert lease.holder_id == "writer-1"
    assert lease.epoch == 1
    assert lease.remaining() > 0

    renewed = renew(directory, lease)
    assert renewed.epoch == 1  # renewal is not a holder change
    assert renewed.expires_at >= lease.expires_at

    release(directory, renewed)
    after = read(directory, "sales")
    assert after.holder_id == ""
    assert after.epoch == 1  # epochs never roll back on release


def test_live_lease_blocks_other_holders(directory, catalog):
    acquire(directory, "sales", "writer-1", ttl=30.0)
    with pytest.raises(ReplicationError):
        acquire(directory, "sales", "writer-2")
    # The holder itself may re-acquire (idempotent restart) without an
    # epoch bump turning into a self-fence.
    again = acquire(directory, "sales", "writer-1", ttl=30.0)
    assert again.epoch == 1


def test_expiry_takeover_bumps_epoch_and_fences(directory, catalog):
    stale = acquire(directory, "sales", "writer-1", ttl=0.05)
    time.sleep(0.1)
    # Expiry alone fences nothing: the old holder can still renew...
    assert renew(directory, stale, ttl=0.05).epoch == 1
    expired = read(directory, "sales")
    time.sleep(0.1)

    taken = acquire(directory, "sales", "writer-2", ttl=30.0)
    assert taken.epoch == 2  # holder change bumps the epoch
    # ...but a recorded takeover fences the old holder's renewals.
    with pytest.raises(LeaseFencedError):
        renew(directory, expired)
    # And release from the fenced holder is a harmless no-op.
    release(directory, expired)
    assert read(directory, "sales").holder_id == "writer-2"


def test_unknown_cube_rejected(directory, catalog):
    with pytest.raises(ReplicationError):
        acquire(directory, "nope", "writer-1")


def test_fenced_append_rejected(directory, catalog):
    stale = acquire(directory, "sales", "writer-1", ttl=0.05)
    catalog.append("sales", [("a3", "b3")], lease=stale)  # still the holder
    time.sleep(0.1)
    acquire(directory, "sales", "writer-2", ttl=30.0)

    with pytest.raises(LeaseFencedError):
        catalog.append("sales", [("a9", "b9")], lease=stale)
    # The fenced batch must not have reached the journal: a fresh load
    # sees only the rows appended under valid leadership.
    assert CubeCatalog(directory).open("sales").relation.num_tuples == 4


def test_chain_flip_cannot_roll_back_concurrent_takeover(directory, catalog):
    """_save_manifest's load-merge-save excludes lease transitions.

    The regression: a chain flip loading the manifest just before a lease
    takeover saved, then saving itself, re-published the old holder/epoch —
    inverting the fence during failover.  Both writers now hold the
    directory's ManifestLock, so while a transition's lock is held a
    catalog save must block rather than write a stale triple.
    """
    lock_path = os.path.join(directory, MANIFEST_LOCK_NAME)
    with open(lock_path, "w"):
        pass  # a lease transition is mid-critical-section

    saved = threading.Event()

    def flip():
        catalog.append("sales", [("a3", "b3")])
        catalog.save("sales")
        saved.set()

    flipper = threading.Thread(target=flip, daemon=True)
    flipper.start()
    assert not saved.wait(0.3)  # blocked behind the held transition lock
    os.unlink(lock_path)  # transition completes
    assert saved.wait(10.0)
    flipper.join()


def test_stale_manifest_lock_is_broken(directory, catalog):
    lock_path = os.path.join(directory, MANIFEST_LOCK_NAME)
    with open(lock_path, "w"):
        pass
    old = time.time() - 120
    os.utime(lock_path, (old, old))
    # A crashed transition's debris must not wedge the next acquirer.
    lease = acquire(directory, "sales", "writer-1")
    assert lease.holder_id == "writer-1"
    assert not os.path.exists(lock_path)


def test_fresh_lock_not_broken(directory, catalog):
    lock = ManifestLock(directory)
    with open(lock.path, "w"):
        pass  # a live holder's fresh lock
    lock._break_if_stale()
    assert os.path.exists(lock.path)  # too young: untouched


def test_fresh_lock_survives_a_racing_stale_breaker(directory, catalog, monkeypatch):
    """_break_if_stale must verify identity before discarding its capture.

    The TOCTOU regression: stat says stale; before this breaker acts,
    another process breaks the debris and a new holder creates a fresh
    lock; the first breaker's blind unlink then destroys the *live* lock,
    letting two processes into the manifest critical section.  The
    rename-and-verify break restores a capture it cannot match to the
    recorded stat.
    """
    import repro.storage.locks as locks_mod

    lock = ManifestLock(directory)
    with open(lock.path, "w"):
        pass
    os.utime(lock.path, (time.time() - 120, time.time() - 120))  # stale

    real_rename = os.rename

    def racing_rename(src, dst):
        # Between the breaker's stat and its rename: the stale debris is
        # swept and a different process acquires a fresh lock (new inode).
        os.unlink(lock.path)
        with open(lock.path, "w"):
            pass
        real_rename(src, dst)

    monkeypatch.setattr(locks_mod.os, "rename", racing_rename)
    lock._break_if_stale()
    # The captured fresh lock failed identity verification and was put
    # back, not destroyed: the live holder still holds its mutex.
    assert os.path.exists(lock.path)
    assert time.time() - os.path.getmtime(lock.path) < 60
    debris = [p for p in os.listdir(directory) if ".stale." in p]
    assert debris == []  # the mismatched capture was restored, not leaked


def test_lease_survives_chain_flips(directory, catalog):
    lease = acquire(directory, "sales", "writer-1", ttl=30.0)
    catalog.append("sales", [("a3", "b3")], lease=lease)
    catalog.save("sales")      # full snapshot rewrite flips the manifest
    catalog.compact("sales")
    after = read(directory, "sales")
    assert after.holder_id == "writer-1"
    assert after.epoch == lease.epoch


# --------------------------------------------------------------------------- #
# Tailing                                                                      #
# --------------------------------------------------------------------------- #


def test_follower_tails_appends(directory, catalog):
    follower = CubeFollower(directory, "sales")
    follower.poll()  # first poll bootstraps
    assert follower.counters["snapshot_loads"] == 1
    assert follower.view().point({"A": "a1"}).count == 2

    catalog.append("sales", [("a1", "b9"), ("a1", "b8")])
    pinned = follower.view()
    assert follower.poll() is True
    assert follower.view().point({"A": "a1"}).count == 4
    # The pre-poll view stays pinned at its version (copy-on-publish).
    assert pinned.point({"A": "a1"}).count == 2
    assert follower.lag()["caught_up"] is True
    assert follower.counters["rebootstraps"] == 0


def test_follower_adopts_replayed_compaction(directory, catalog):
    follower = CubeFollower(directory, "sales")
    follower.poll()
    catalog.append("sales", [("a3", "b3")])
    follower.poll()  # replica has replayed the batch from the journal

    catalog.compact("sales", mode="full")  # folds that same batch durably
    assert follower.poll() is True  # adopts the new chain identity
    assert follower.counters["rebootstraps"] == 0
    assert follower.counters["snapshot_loads"] == 1
    assert follower.view().point({"A": "a3"}).count == 1


def test_follower_rebootstraps_on_unseen_compaction(directory, catalog):
    follower = CubeFollower(directory, "sales")
    follower.poll()
    # The follower never polls between the append and the fold, so the
    # durable row count moves past its cursor.
    catalog.append("sales", [("a3", "b3")])
    catalog.compact("sales", mode="full")

    assert follower.poll() is True
    assert follower.counters["rebootstraps"] == 1
    assert follower.counters["snapshot_loads"] == 2
    assert follower.view().point({"A": "a3"}).count == 1


def test_warm_restart_skips_snapshot(directory, catalog, tmp_path):
    state = str(tmp_path / "state")
    first = CubeFollower(directory, "sales", state_dir=state)
    first.poll()
    catalog.append("sales", [("a3", "b3")])
    first.poll()

    # Restart: a new follower adopts the live replica + persisted cursor.
    second = CubeFollower(directory, "sales", state_dir=state)
    second.resume(first.replica)
    assert second.counters["snapshot_loads"] == 0
    assert second.view().point({"A": "a3"}).count == 1

    catalog.append("sales", [("a4", "b4")])
    second.poll()
    assert second.counters["snapshot_loads"] == 0  # journal tail only
    assert second.view().point({"A": "a4"}).count == 1


def test_resume_without_cursor_falls_back_to_bootstrap(directory, catalog):
    follower = CubeFollower(directory, "sales")  # no state_dir
    probe = CubeFollower(directory, "sales")
    probe.poll()
    follower.resume(probe.replica)
    assert follower.counters["snapshot_loads"] == 1  # cold path


def test_tailer_background_thread_and_lag(directory, catalog):
    with ReplicationTailer(directory, ["sales"], poll_interval=0.01) as tailer:
        tailer.wait_caught_up(timeout=5.0)
        catalog.append("sales", [("a5", "b5")])
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if tailer.view("sales").point({"A": "a5"}).count == 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("background tailer never applied the append")
        stats = tailer.stats()["sales"]
        assert stats["rows"] == 4
        assert stats["replica_lag"]["caught_up"] in (True, False)
    with pytest.raises(ReplicationError):
        tailer.view("other")


def test_promote_takes_lease_and_installs(directory, catalog):
    old = acquire(directory, "sales", "leader-1", ttl=0.05)
    catalog.append("sales", [("a3", "b3")], lease=old)
    tailer = ReplicationTailer(directory, ["sales"])
    tailer.wait_caught_up(timeout=5.0)
    time.sleep(0.1)  # let the old lease expire

    target = CubeCatalog(directory)
    lease, replica = tailer.promote("sales", "leader-2", catalog=target)
    assert lease.epoch == old.epoch + 1
    assert replica.relation.num_tuples == 4
    assert "sales" not in tailer.followers
    # The installed replica serves writes without a chain reload.
    target.append("sales", [("a6", "b6")], lease=lease)
    assert target.get_loaded("sales") is replica
    # The deposed leader's straggler append is fenced.
    with pytest.raises(LeaseFencedError):
        catalog.append("sales", [("a7", "b7")], lease=old)


def test_promote_refuses_replica_that_cannot_catch_up(
    directory, catalog, monkeypatch
):
    """A behind replica must never be installed as leader.

    Installing it would let the new leader's next compaction snapshot the
    behind in-memory state and truncate journal rows it never replayed —
    permanent data loss.  promote() must keep polling until caught up and,
    on timeout, release the lease (epoch bump kept) and raise.
    """
    old = acquire(directory, "sales", "leader-1", ttl=0.05)
    tailer = ReplicationTailer(directory, ["sales"], poll_interval=0.01)
    tailer.wait_caught_up(timeout=5.0)
    time.sleep(0.1)  # let the old lease expire

    follower = tailer.followers["sales"]
    monkeypatch.setattr(
        follower,
        "lag",
        lambda: {"journal_bytes": 64, "epoch_delta": 0, "caught_up": False},
    )
    with pytest.raises(ReplicationError):
        tailer.promote("sales", "leader-2", catchup_timeout=0.2)
    # Still following — the replica was not handed over...
    assert "sales" in tailer.followers
    # ...and the lease was freed for the next candidate, with the epoch
    # bump kept (monotonic: the old leader stays fenced).
    after = read(directory, "sales")
    assert after.holder_id == ""
    assert after.epoch == old.epoch + 1


def test_promote_mid_run_keeps_other_followers_alive(directory, catalog):
    """Removing a promoted cube must not kill the background tailer.

    The regression: promote()'s `del` from the caller's thread landed in
    the middle of the _run loop's dict iteration, raising RuntimeError in
    the daemon thread — every remaining follower silently froze while
    still reporting its last cached (caught-up) lag.
    """
    catalog.create("ads", ROWS, schema=SCHEMA)
    with ReplicationTailer(
        directory, ["ads", "sales"], poll_interval=0.001
    ) as tailer:
        tailer.wait_caught_up(timeout=5.0)
        target = CubeCatalog(directory)
        tailer.promote("sales", "leader-1", catalog=target)
        assert "sales" not in tailer.followers

        catalog.append("ads", [("a5", "b5")])
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if tailer.view("ads").point({"A": "a5"}).count == 1:
                break
            time.sleep(0.01)
        else:
            pytest.fail("surviving follower stopped replicating after promote")


def test_tailer_outlives_poll_exceptions(directory, catalog, monkeypatch):
    """Non-ReplicationError poll failures must not kill the daemon thread.

    A leader compaction can unlink a stale snapshot between a follower's
    manifest read and its ServingCube.load (FileNotFoundError).  The
    regression: the thread died silently and stats kept reporting the last
    cached caught-up lag.  Now the error is counted, surfaced, flips
    caught_up off after a streak, and the tailer recovers.
    """
    tailer = ReplicationTailer(directory, ["sales"], poll_interval=0.001)
    tailer.start()
    try:
        tailer.wait_caught_up(timeout=5.0)
        follower = tailer.followers["sales"]
        real_poll = follower.poll

        def torn_poll():
            raise FileNotFoundError("snapshot unlinked by leader compaction")

        monkeypatch.setattr(follower, "poll", torn_poll)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if follower.counters["poll_errors"] >= POLL_ERRORS_BEFORE_STALE:
                break
            time.sleep(0.01)
        else:
            pytest.fail("tailer thread died instead of recording poll errors")
        # The degradation is visible: a follower that cannot poll stops
        # claiming its last cached caught-up lag.
        assert follower.lag()["caught_up"] is False
        assert "FileNotFoundError" in follower.stats()["last_error"]

        monkeypatch.setattr(follower, "poll", real_poll)
        catalog.append("sales", [("a5", "b5")])
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if (
                follower.lag().get("caught_up")
                and tailer.view("sales").point({"A": "a5"}).count == 1
            ):
                break
            time.sleep(0.01)
        else:
            pytest.fail("tailer did not recover once polls stopped failing")
    finally:
        tailer.stop()


# --------------------------------------------------------------------------- #
# Follower serving + ReplicaSet                                                #
# --------------------------------------------------------------------------- #


def test_follower_server_role_validation(directory, catalog):
    with pytest.raises(ServerError):
        AsyncCubeServer(catalog, role="follower")  # tailer required
    with pytest.raises(ServerError):
        AsyncCubeServer(
            catalog, role="leader", tailer=ReplicationTailer(directory)
        )
    with pytest.raises(ServerError):
        AsyncCubeServer(catalog, role="observer")


def test_follower_server_reads_and_rejects_writes(directory, catalog):
    tailer = ReplicationTailer(directory, ["sales"], poll_interval=0.01)
    tailer.start()
    try:
        async def scenario():
            follower_catalog = CubeCatalog(directory)
            async with AsyncCubeServer(
                follower_catalog, role="follower", tailer=tailer
            ) as server:
                answer = await server.query("sales", {"A": "a1"})
                assert answer.count == 2
                for call in (
                    server.append("sales", [("x", "y")]),
                    server.create("other", ROWS, schema=SCHEMA),
                    server.drop("sales"),
                    server.save("sales"),
                    server.compact("sales"),
                ):
                    with pytest.raises(ServerError):
                        await call
                stats = server.stats()
                assert stats["role"] == "follower"
                assert stats["cubes"]["sales"]["replica_lag"]["caught_up"]
                assert stats["cubes"]["sales"]["replica_rows"] == 3

        run(scenario())
    finally:
        tailer.stop()


async def _rpc(reader, writer, request):
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_tcp_replica_verb(directory, catalog):
    tailer = ReplicationTailer(directory, ["sales"], poll_interval=0.01)
    tailer.start()
    try:
        async def scenario():
            async with AsyncCubeServer(
                CubeCatalog(directory), role="follower", tailer=tailer
            ) as server:
                tcp = await serve_tcp(server, port=0)
                port = tcp.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                try:
                    status = await _rpc(reader, writer, {"op": "replica"})
                    assert status["ok"]
                    assert status["result"]["role"] == "follower"
                    cursor = status["result"]["cubes"]["sales"]["cursor"]
                    assert cursor["rows"] == 3

                    denied = await _rpc(reader, writer, {
                        "op": "append", "cube": "sales", "rows": [["x", "y"]],
                    })
                    assert not denied["ok"]
                    assert denied["error"]["type"] == "ServerError"
                finally:
                    writer.close()
                    await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

        run(scenario())
    finally:
        tailer.stop()


def test_leader_replica_verb_reports_leader(directory, catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            status = server.replica_status()
            assert status == {"role": "leader", "cubes": {}}
            assert server.stats()["role"] == "leader"

    run(scenario())


def test_replica_set_routing(directory, catalog):
    tailer = ReplicationTailer(directory, ["sales"], poll_interval=0.01)
    tailer.start()
    try:
        async def scenario():
            async with AsyncCubeServer(catalog) as leader:
                leader_tcp = await serve_tcp(leader, port=0)
                leader_port = leader_tcp.sockets[0].getsockname()[1]
                async with AsyncCubeServer(
                    CubeCatalog(directory), role="follower", tailer=tailer
                ) as follower:
                    follower_tcp = await serve_tcp(follower, port=0)
                    follower_port = follower_tcp.sockets[0].getsockname()[1]
                    replica_set = await ReplicaSet.connect(
                        ("127.0.0.1", leader_port),
                        [("127.0.0.1", follower_port)],
                        request_timeout=10.0,
                    )
                    try:
                        answer = await replica_set.query(
                            "sales", {"A": "a1"}
                        )
                        assert answer["count"] == 2
                        report = await replica_set.append(
                            "sales", [("a8", "b8")]
                        )
                        assert report["appended_rows"] == 1
                        deadline = time.time() + 5.0
                        while time.time() < deadline:
                            answer = await replica_set.query(
                                "sales", {"A": "a8"}
                            )
                            if answer["count"] == 1:
                                break
                            await asyncio.sleep(0.02)
                        else:
                            pytest.fail("append never reached the follower")
                        stats = await replica_set.stats()
                        assert stats["client"]["leader_requests"] >= 1
                        assert stats["client"]["follower_requests"] >= 2
                        status = await replica_set.replica_status()
                        assert status[0]["role"] == "follower"
                        with pytest.raises(ReplicationError):
                            await replica_set.query("nope", {"A": "a1"})
                    finally:
                        await replica_set.close()
                    follower_tcp.close()
                    await follower_tcp.wait_closed()
                leader_tcp.close()
                await leader_tcp.wait_closed()

        run(scenario())
    finally:
        tailer.stop()
