"""Tests for the adaptive rollup subsystem (:mod:`repro.rollup`).

The load-bearing property (the ISSUE's acceptance criterion) is *routing
invisibility*: every answer served from a materialised rollup table — by
exact grain match or by coarser-grain reaggregation — must equal, cell for
cell (count and measures), the answer the closed-cube engine produces for
the same query, and must stay equal across incremental appends.  The
hypothesis lattice property proves it over random relations, both column
backends, and both routing modes; the staleness tests prove it across all
three maintenance paths (copy-on-publish, in-place, full recompute).
Everything else exercises the parts: the shape recorder, the advisor's
budget/top-k policy, the table kernel build and delta merge, the serving
and session surfaces, the TCP verbs, and the merge-cache counters.
"""

from __future__ import annotations

import asyncio
import json
import random
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import BACKEND_NAMES

from repro import (
    Avg,
    CubeCatalog,
    CubeSession,
    Sum,
    Relation,
    compute_closed_cube,
    open_query_engine,
)
from repro.core.columns import use_backend
from repro.core.errors import QueryError
from repro.core.measures import (
    AvgMeasure,
    MaxMeasure,
    MeasureSet,
    MinMeasure,
    SumMeasure,
)
from repro.rollup import (
    RollupRouter,
    RollupTable,
    ShapeRecorder,
    advise_rollups,
    materialise_rollups,
)
from repro.server import AsyncCubeServer, serve_tcp

SCHEMA = {"dimensions": ["A", "B", "C"], "measures": ["m"]}

MEASURES = MeasureSet((SumMeasure("m"), AvgMeasure("m")))


def _rows(seed: int, count: int, cardinality: int = 3):
    rng = random.Random(seed)
    return [
        (
            f"a{rng.randrange(cardinality)}",
            f"b{rng.randrange(cardinality)}",
            f"c{rng.randrange(cardinality)}",
            float(rng.randrange(1, 50)),
        )
        for _ in range(count)
    ]


def _serving(rows, min_sup: int = 1):
    return (
        CubeSession.from_rows(rows, schema=SCHEMA)
        .closed(min_sup=min_sup)
        .measures(Sum("m"), Avg("m"))
        .build()
    )


def _measured_relation(dim_rows, min_sup=1, measures=MEASURES):
    values = [float(i % 7 + 1) for i in range(len(dim_rows))]
    relation = Relation.from_rows(dim_rows, ["A", "B", "C"], measures={"m": values})
    cube = compute_closed_cube(
        relation, min_sup=min_sup, algorithm="c-cubing-mm",
        measures=list(measures.specs),
    )
    return relation, cube


def _flat(answers):
    """Comparable projection: routed answers carry ``closure=None``."""
    return [(a.cell, a.count, a.measures) for a in answers]


def _install_router(engine, relation, grains, min_sup, measures=MEASURES):
    router = RollupRouter(min_sup=min_sup)
    router.tables = {
        tuple(sorted(grain)): RollupTable.build(relation, grain, measures)
        for grain in grains
    }
    engine.router = router
    return router


def _routed_vs_engine_slices(engine, queries):
    """Each query answered twice: routed, then with the router detached."""
    pairs = []
    router = engine.router
    for fixed, group in queries:
        engine.clear_caches()
        engine.router = router
        routed = engine.slice(fixed, group)
        engine.clear_caches()
        engine.router = None
        reference = engine.slice(fixed, group)
        pairs.append((routed, reference))
    engine.router = router
    return pairs


# --------------------------------------------------------------------------- #
# ShapeRecorder                                                                #
# --------------------------------------------------------------------------- #


def test_recorder_logs_shapes_with_hits_and_cost():
    recorder = ShapeRecorder()
    recorder.record((0,), (1,), cost=5.0)
    recorder.record((0,), (1,), cost=7.0)
    recorder.record((2,), cost=1.0)
    stats = recorder.snapshot()
    assert [(s.fixed_dims, s.group_dims, s.hits, s.cost) for s in stats] == [
        ((0,), (1,), 2, 12.0),
        ((2,), (), 1, 1.0),
    ]
    assert stats[0].grain == (0, 1)
    assert recorder.stats() == {"shapes": 2, "recorded": 3, "sampled_out": 0}


def test_recorder_sampling_is_seeded_and_deterministic():
    streams = []
    for _ in range(2):
        recorder = ShapeRecorder(sample_rate=0.5, seed=11)
        for i in range(200):
            recorder.record((i % 4,), cost=1.0)
        streams.append(
            (recorder.snapshot(), recorder.recorded, recorder.sampled_out)
        )
    assert streams[0] == streams[1]
    assert streams[0][2] > 0  # some queries really were sampled out


def test_recorder_rejects_bad_sample_rate():
    with pytest.raises(ValueError):
        ShapeRecorder(sample_rate=0.0)
    with pytest.raises(ValueError):
        ShapeRecorder(sample_rate=1.5)


def test_recorder_evicts_the_coldest_shape_at_capacity():
    recorder = ShapeRecorder(max_shapes=2)
    recorder.record((0,))
    recorder.record((0,))
    recorder.record((1,))  # one hit: the coldest
    recorder.record((2,))  # evicts (1,)
    shapes = {s.fixed_dims for s in recorder.snapshot()}
    assert shapes == {(0,), (2,)}


def test_recorder_clear_drops_log_but_keeps_counters_meaningful():
    recorder = ShapeRecorder()
    recorder.record((0,))
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.recorded == 1


# --------------------------------------------------------------------------- #
# Advisor                                                                      #
# --------------------------------------------------------------------------- #


def _hot_recorder():
    recorder = ShapeRecorder()
    for _ in range(10):
        recorder.record((0,), (1,), cost=20.0)  # grain (0, 1): hottest
    for _ in range(5):
        recorder.record((2,), cost=5.0)  # grain (2,)
    recorder.record((0,), (2,), cost=1.0)  # grain (0, 2): coldest
    recorder.record((), ())  # apex: never a candidate
    return recorder


def test_advisor_ranks_by_cost_and_applies_top_k():
    relation, _ = _measured_relation([r[:3] for r in _rows(3, 40)])
    choices = advise_rollups(relation, _hot_recorder(), MEASURES, top_k=2)
    assert [c.dims for c in choices] == [(0, 1), (2,), (0, 2)]
    assert [c.chosen for c in choices] == [True, True, False]
    assert choices[0].reason == "selected"
    assert choices[2].reason == "beyond top-k"
    assert choices[0].hits == 10 and choices[0].cost == pytest.approx(200.0)


def test_advisor_enforces_the_byte_budget():
    relation, _ = _measured_relation([r[:3] for r in _rows(3, 40)])
    choices = advise_rollups(
        relation, _hot_recorder(), MEASURES, budget_bytes=1
    )
    assert all(not c.chosen for c in choices)
    assert all(c.reason == "over budget" for c in choices)


def test_advisor_min_hits_filters_cold_grains():
    relation, _ = _measured_relation([r[:3] for r in _rows(3, 40)])
    choices = advise_rollups(relation, _hot_recorder(), MEASURES, min_hits=5)
    assert [c.dims for c in choices] == [(0, 1), (2,)]


def test_materialise_builds_only_chosen_tables_with_actual_sizes():
    relation, _ = _measured_relation([r[:3] for r in _rows(3, 40)])
    choices, tables = materialise_rollups(
        relation, _hot_recorder(), MEASURES, top_k=2
    )
    assert set(tables) == {(0, 1), (2,)}
    for choice in choices:
        if choice.chosen:
            assert choice.reason == "materialised"
            assert choice.estimated_rows == len(tables[choice.dims])
            assert choice.estimated_bytes == tables[choice.dims].estimated_bytes


# --------------------------------------------------------------------------- #
# RollupTable: kernel build and delta merge                                    #
# --------------------------------------------------------------------------- #


def _brute_groups(relation, dims):
    """Reference group-by: count and Sum/Avg state (the group sum) per key."""
    groups = {}
    values = relation.measure_columns[relation.schema.measure_index("m")]
    for tid in range(relation.num_tuples):
        key = tuple(relation.columns[dim][tid] for dim in dims)
        entry = groups.setdefault(key, [0, 0.0])
        entry[0] += 1
        entry[1] += values[tid]
    return groups


def test_table_build_matches_brute_force_group_by(column_backend):
    relation, _ = _measured_relation([r[:3] for r in _rows(7, 60)])
    table = RollupTable.build(relation, (0, 2), MEASURES)
    expected = _brute_groups(relation, (0, 2))
    assert set(table.rows) == set(expected)
    for key, (count, total) in expected.items():
        got_count, row = table.rows[key]
        assert got_count == count
        items = dict(table.measure_items(got_count, row))
        assert items["sum(m)"] == pytest.approx(total)
        assert items["avg(m)"] == pytest.approx(total / count)


def test_table_merged_delta_equals_full_rebuild(column_backend):
    rows = _rows(13, 50)
    extra = _rows(14, 25)
    relation, _ = _measured_relation([r[:3] for r in rows])
    table = RollupTable.build(relation, (0, 1), MEASURES)
    relation.append_rows(
        [r[:3] for r in extra],
        measures={"m": [float(i % 7 + 1) for i in range(len(extra))]},
    )
    yields = []
    merged = table.merged_delta(
        relation, batch_size=2, yield_between_batches=lambda: yields.append(1)
    )
    rebuilt = RollupTable.build(relation, (0, 1), MEASURES)
    assert merged is not table
    assert merged.covered_tuples == relation.num_tuples
    assert table.covered_tuples == 50  # the published table was not touched
    assert set(merged.rows) == set(rebuilt.rows)
    for key, (count, row) in rebuilt.rows.items():
        got_count, got_row = merged.rows[key]
        assert got_count == count
        assert got_row == pytest.approx(row)
    assert yields  # the chunked merge really yielded between batches


def test_table_merged_delta_is_identity_without_growth():
    relation, _ = _measured_relation([r[:3] for r in _rows(5, 20)])
    table = RollupTable.build(relation, (0,), MEASURES)
    assert table.merged_delta(relation) is table


def test_table_select_posting_semantics():
    relation, _ = _measured_relation([r[:3] for r in _rows(9, 30)])
    table = RollupTable.build(relation, (0, 1), MEASURES)
    assert set(table.select({})) == set(table.rows)
    value = next(iter(relation.encoder(0).values()))
    selected = list(table.select({0: value}))
    assert selected and all(key[0] == value for key in selected)
    assert list(table.select({0: 9999})) == []


def test_min_max_states_fold_through_reaggregation():
    dim_rows = [r[:3] for r in _rows(21, 40)]
    measures = MeasureSet((MinMeasure("m"), MaxMeasure("m")))
    relation, cube = _measured_relation(dim_rows, measures=measures)
    engine = open_query_engine(cube)
    _install_router(engine, relation, [(0, 1, 2)], min_sup=1, measures=measures)
    code = relation.columns[0][0]
    engine.clear_caches()
    routed = engine.slice({0: code}, [1])
    router, engine.router = engine.router, None
    engine.clear_caches()
    reference = engine.slice({0: code}, [1])
    engine.router = router
    assert router.counters["reaggregated"] == 1
    assert _flat(routed) == _flat(reference)


# --------------------------------------------------------------------------- #
# Router vs engine: the lattice property                                       #
# --------------------------------------------------------------------------- #


def _lattice_queries(relation):
    """Every (fixed, group) partition of the 3-dim lattice, two value picks."""
    queries = []
    picks = [0, relation.num_tuples - 1]
    dims = range(relation.num_dimensions)
    for mask in range(3 ** len(list(dims))):
        roles, rest = [], mask
        for _ in dims:
            roles.append(rest % 3)  # 0: free, 1: fixed, 2: group-by
            rest //= 3
        group = tuple(d for d, role in enumerate(roles) if role == 2)
        for tid in picks:
            fixed = {
                d: relation.columns[d][tid]
                for d, role in enumerate(roles)
                if role == 1
            }
            queries.append((fixed, group))
    return queries


def _point_cells(relation):
    cells = []
    for tid in (0, relation.num_tuples - 1):
        for mask in range(1, 8):
            cells.append(
                tuple(
                    relation.columns[d][tid] if mask & (1 << d) else None
                    for d in range(3)
                )
            )
    # A cell mixing first/last-row values: often absent -> count is None.
    cells.append((relation.columns[0][0], relation.columns[1][-1], None))
    return cells


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(0, 2), st.integers(0, 2), st.integers(0, 1)
        ),
        min_size=1,
        max_size=18,
    ),
    min_sup=st.integers(1, 2),
)
def test_lattice_property_routed_equals_engine(rows, min_sup):
    """Routed answers == engine answers over the whole query lattice.

    Two router configurations: every grain installed (all matches exact) and
    only the finest grain installed (every match reaggregates), across both
    column backends.
    """
    all_grains = [
        grain
        for mask in range(1, 8)
        for grain in [tuple(d for d in range(3) if mask & (1 << d))]
    ]
    for backend in BACKEND_NAMES:
        with use_backend(backend):
            relation, cube = _measured_relation(rows, min_sup=min_sup)
            engine = open_query_engine(cube)
            for grains in (all_grains, [(0, 1, 2)]):
                router = _install_router(engine, relation, grains, min_sup)
                for fixed, group in _lattice_queries(relation):
                    engine.clear_caches()
                    engine.router = router
                    routed = engine.slice(fixed, group)
                    engine.clear_caches()
                    engine.router = None
                    assert _flat(routed) == _flat(engine.slice(fixed, group))
                for cell in _point_cells(relation):
                    engine.clear_caches()
                    engine.router = router
                    routed_point = engine.point(cell)
                    engine.clear_caches()
                    engine.router = None
                    reference = engine.point(cell)
                    assert routed_point.count == reference.count
                    assert routed_point.measures == reference.measures


def test_router_counts_exact_and_reaggregated_matches(column_backend):
    relation, cube = _measured_relation([r[:3] for r in _rows(31, 50)])
    engine = open_query_engine(cube)
    router = _install_router(engine, relation, [(0, 1)], min_sup=1)
    code = relation.columns[0][0]
    engine.clear_caches()
    engine.slice({0: code}, [1])  # exact: grain == (0, 1)
    engine.clear_caches()
    engine.slice({}, [0])  # coarser: reaggregated from (0, 1)
    engine.clear_caches()
    engine.slice({0: code}, [2])  # grain (0, 2) not installed: fallback
    assert router.counters["routed_slices"] == 2
    assert router.counters["exact_grain"] == 1
    assert router.counters["reaggregated"] == 1
    # The uncovered slice falls back once, then once per point its
    # enumeration resolves — counters are best-effort traffic telemetry.
    assert router.counters["fallbacks"] >= 1
    assert router.hits[(0, 1)] == 2
    stats = router.stats()
    assert stats["enabled"] and stats["grains"] == 1
    assert stats["tables"]["0,1"]["hits"] == 2
    assert stats["total_bytes"] == router.total_bytes() > 0


def test_routed_points_respect_min_sup(column_backend):
    dim_rows = [("x", "y", "z")] * 3 + [("q", "r", "s")]  # singleton row
    relation, cube = _measured_relation(dim_rows, min_sup=2)
    engine = open_query_engine(cube)
    router = _install_router(engine, relation, [(0, 1, 2)], min_sup=2)
    rare = tuple(relation.columns[d][3] for d in range(3))
    hot = tuple(relation.columns[d][0] for d in range(3))
    assert engine.point(rare).count is None  # below threshold, routed
    assert engine.point(hot).count == 3
    assert router.counters["routed_points"] == 2


# --------------------------------------------------------------------------- #
# Serving surface: enable/advise/disable, recorder plumbing                    #
# --------------------------------------------------------------------------- #


def _drive_traffic(serving, repeats: int = 3):
    for _ in range(repeats):
        for value in ("a0", "a1", "a2"):
            serving.slice({"A": value}, group_by=["B"])
        serving.point({"A": "a0"})


def test_enable_rollups_mines_the_recorded_workload():
    serving = _serving(_rows(41, 80))
    _drive_traffic(serving)
    recorder_stats = serving.engine.recorder.stats()
    assert recorder_stats["recorded"] > 0
    report = serving.enable_rollups(top_k=2)
    grains = {tuple(c["dims"]) for c in report["installed"]}
    assert (0, 1) in grains  # the slice traffic's grain
    assert report["total_bytes"] > 0
    stats = serving.rollup_stats()
    assert stats["enabled"] and stats["grains"] == len(report["installed"])
    for entry in stats["tables"].values():
        assert entry["dimensions"] == [SCHEMA["dimensions"][d] for d in entry["dims"]]


def test_routed_serving_answers_equal_engine_answers():
    serving = _serving(_rows(43, 80))
    _drive_traffic(serving)
    serving.enable_rollups()
    queries = [({"A": "a0"}, ["B"]), ({"A": "a2"}, ["B"]), ({}, ["A"])]

    def snap():
        serving.clear_cache()
        return [
            [(a.coordinates_dict(), a.count, a.measures_dict()) for a in
             serving.slice(fixed, group_by=group)]
            for fixed, group in queries
        ] + [serving.point({"A": "a1"}).count]

    routed = snap()
    before = serving.rollup_stats()["routed_slices"]
    assert before > 0
    router, serving.engine.router = serving.engine.router, None
    reference = snap()
    serving.engine.router = router
    assert routed == reference


def test_advise_rollups_is_a_dry_run():
    serving = _serving(_rows(47, 60))
    _drive_traffic(serving)
    report = serving.advise_rollups(top_k=1)
    assert len([c for c in report["choices"] if c["chosen"]]) == 1
    assert serving.engine.router is None  # nothing installed
    assert serving.rollup_stats() == {"enabled": False}


def test_enable_rollups_remembers_parameters_and_disable_uninstalls():
    serving = _serving(_rows(53, 60))
    _drive_traffic(serving)
    first = serving.enable_rollups(budget_bytes=123_456, top_k=3)
    assert first["budget_bytes"] == 123_456
    again = serving.enable_rollups()  # omitted params reuse the stored ones
    assert again["budget_bytes"] == 123_456 and again["top_k"] == 3
    serving.disable_rollups()
    assert serving.engine.router is None
    assert serving.rollup_stats() == {"enabled": False}


def test_enable_rollups_requires_config_and_single_engine():
    from repro import CubeSchema
    from repro.session.serving import ServingCube

    relation = Relation.from_rows([("x", "p"), ("y", "q")], ["store", "product"])
    cube = compute_closed_cube(relation)
    bare = ServingCube(
        relation, CubeSchema(("store", "product")), cube,
        open_query_engine(cube), "qc-dfs",
    )  # no explicit config
    with pytest.raises(QueryError, match="config"):
        bare.enable_rollups()

    partitioned = (
        CubeSession.from_rows(
            [r[:3] for r in _rows(59, 30)],
            schema={"dimensions": ["A", "B", "C"]},
        )
        .partitioned("A")
        .build()
    )
    with pytest.raises(QueryError, match="partitioned"):
        partitioned.enable_rollups()
    with pytest.raises(QueryError, match="partitioned"):
        partitioned.advise_rollups()
    assert partitioned.rollup_stats() == {"enabled": False}
    partitioned.disable_rollups()  # tolerated no-op


def test_session_builder_enables_rollups():
    serving = (
        CubeSession.from_rows(_rows(61, 50), schema=SCHEMA)
        .measures(Sum("m"), Avg("m"))
        .enable_rollups(budget_bytes=2_000_000, top_k=4)
        .build()
    )
    # The log starts empty, so the router is installed with no tables yet.
    stats = serving.rollup_stats()
    assert stats["enabled"] and stats["grains"] == 0
    _drive_traffic(serving)
    report = serving.enable_rollups()  # re-mine with the builder's params
    assert report["budget_bytes"] == 2_000_000 and report["top_k"] == 4
    assert serving.rollup_stats()["grains"] == len(report["installed"])


def test_stats_surfaces_recorder_rollups_and_merge_cache():
    serving = _serving(_rows(67, 40))
    stats = serving.stats()
    assert stats["rollups"] == {"enabled": False}
    assert set(stats["merge_cache"]) == {
        "delta_sends", "full_sends", "misses", "worker",
    }
    engine_stats = serving.engine.stats()
    assert engine_stats["rollups"] == {"enabled": False}
    assert engine_stats["recorder"]["recorded"] == 0
    _drive_traffic(serving)
    serving.enable_rollups()
    assert serving.stats()["rollups"]["enabled"]


# --------------------------------------------------------------------------- #
# Staleness: appends and refreshes keep routed answers exact                   #
# --------------------------------------------------------------------------- #


def _reference_slices(serving, queries):
    router, serving.engine.router = serving.engine.router, None
    serving.clear_cache()
    reference = [
        [(a.coordinates_dict(), a.count, a.measures_dict()) for a in
         serving.slice(fixed, group_by=group)]
        for fixed, group in queries
    ]
    serving.engine.router = router
    return reference


@pytest.mark.parametrize("copy_on_publish", [False, True])
def test_append_then_route_stays_fresh(copy_on_publish):
    serving = _serving(_rows(71, 60))
    _drive_traffic(serving)
    serving.enable_rollups()
    queries = [({"A": "a0"}, ["B"]), ({}, ["A"])]
    batch = _rows(72, 25)
    report = serving.append(batch, copy_on_publish=copy_on_publish)
    assert report.mode == "delta-merge"
    # No cache clear on the routed path: the publish swapped the tables.
    routed = [
        [(a.coordinates_dict(), a.count, a.measures_dict()) for a in
         serving.slice(fixed, group_by=group)]
        for fixed, group in queries
    ]
    assert routed == _reference_slices(serving, queries)
    for entry in serving.rollup_stats()["tables"].values():
        assert entry["covered_tuples"] == serving.relation.num_tuples


def test_full_recompute_append_rebuilds_the_router():
    serving = _serving(_rows(73, 50), min_sup=2)  # min_sup>1: no delta merge
    _drive_traffic(serving)
    serving.enable_rollups()
    hits_before = dict(serving.engine.router.hits)
    report = serving.append(_rows(74, 20))
    assert report.mode == "full-recompute"
    router = serving.engine.router
    assert router is not None  # survived the engine swap
    assert router.hits == hits_before  # counters carried over
    queries = [({"A": "a1"}, ["B"]), ({}, ["B"])]
    routed = [
        [(a.coordinates_dict(), a.count, a.measures_dict()) for a in
         serving.slice(fixed, group_by=group)]
        for fixed, group in queries
    ]
    assert routed == _reference_slices(serving, queries)
    for entry in serving.rollup_stats()["tables"].values():
        assert entry["covered_tuples"] == serving.relation.num_tuples


def test_refresh_carries_recorder_and_router():
    serving = _serving(_rows(79, 40))
    _drive_traffic(serving)
    recorded = serving.engine.recorder.recorded
    serving.enable_rollups()
    grains = set(serving.engine.router.tables)
    serving.refresh()
    assert serving.engine.recorder.recorded == recorded
    assert set(serving.engine.router.tables) == grains


def test_remote_merge_appends_maintain_rollups_and_count_cache_traffic():
    from repro.incremental.parallel import worker_cache_stats

    serving = _serving(_rows(83, 60))
    _drive_traffic(serving)
    serving.enable_rollups()
    before = worker_cache_stats()
    with ThreadPoolExecutor(1) as pool:
        first = serving.append(_rows(84, 15), copy_on_publish=True, executor=pool)
        second = serving.append(_rows(85, 15), copy_on_publish=True, executor=pool)
    assert first.merge_cache == "full-send (cold)"
    assert second.merge_cache == "delta-send"
    assert "remote merge payload" in second.describe()
    assert serving.merge_cache_stats["full_sends"] == 1
    assert serving.merge_cache_stats["delta_sends"] == 1
    after = worker_cache_stats()
    assert after["stores"] >= before["stores"] + 2
    assert after["hits"] >= before["hits"] + 1
    queries = [({"A": "a0"}, ["B"]), ({}, ["A"])]
    routed = [
        [(a.coordinates_dict(), a.count, a.measures_dict()) for a in
         serving.slice(fixed, group_by=group)]
        for fixed, group in queries
    ]
    assert routed == _reference_slices(serving, queries)


# --------------------------------------------------------------------------- #
# Server verbs: rollups / advise, stats plumbing, TCP round trip               #
# --------------------------------------------------------------------------- #


@pytest.fixture
def catalog(tmp_path):
    return CubeCatalog(str(tmp_path / "cubes"))


async def _rpc(reader, writer, request):
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def _create_sales(catalog):
    session = (
        CubeSession.from_rows(_rows(91, 60), schema=SCHEMA)
        .measures(Sum("m"))
    )
    return catalog.create("sales", session)


def test_server_advise_and_rollups_verbs(catalog):
    _create_sales(catalog)

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            for value in ("a0", "a1", "a2"):
                await server.execute(
                    "sales", {"op": "slice", "fixed": {"A": value},
                              "group_by": ["B"]}
                )
            dry = await server.advise("sales", top_k=2)
            assert dry["applied"] is False
            assert any(c["chosen"] for c in dry["choices"])

            applied = await server.advise("sales", top_k=2, apply=True)
            assert applied["applied"] is True
            assert applied["installed"]

            stats = await server.rollups("sales")
            assert stats["enabled"] and stats["grains"] >= 1

            server_stats = server.stats()
            entry = server_stats["cubes"]["sales"]
            assert entry["rollups"]["enabled"]
            assert set(entry["merge_cache"]) == {
                "delta_sends", "full_sends", "misses",
            }

    asyncio.run(scenario())


def test_tcp_rollup_verbs_round_trip(catalog):
    _create_sales(catalog)

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                for value in ("a0", "a1"):
                    await _rpc(
                        reader, writer,
                        {"op": "query", "cube": "sales", "q": {"A": value}},
                    )
                dry = await _rpc(
                    reader, writer, {"op": "advise", "cube": "sales"}
                )
                assert dry["ok"] and dry["result"]["applied"] is False

                applied = await _rpc(
                    reader, writer,
                    {"op": "advise", "cube": "sales", "budget_bytes": 4_000_000,
                     "top_k": 4, "apply": True},
                )
                assert applied["ok"] and applied["result"]["applied"] is True

                routed = await _rpc(
                    reader, writer, {"op": "rollups", "cube": "sales"}
                )
                assert routed["ok"] and routed["result"]["enabled"]

                bad = await _rpc(
                    reader, writer,
                    {"op": "advise", "cube": "sales", "top_k": "many"},
                )
                assert not bad["ok"]
            finally:
                writer.close()
                await writer.wait_closed()
            tcp.close()
            await tcp.wait_closed()

    asyncio.run(scenario())
