"""Tests for the asyncio serving layer (:mod:`repro.server`) and its TCP face.

The acceptance criterion from the ISSUE: one :class:`AsyncCubeServer`
sustains concurrent appends and queries on two catalog cubes with zero torn
reads — every answer matches some published version of its cube, and the
final cubes equal from-scratch rebuilds.  The rest covers the serving
mechanics: batching, back-pressure, per-item error isolation, lifecycle,
and the line-JSON TCP protocol.
"""

from __future__ import annotations

import asyncio
import json
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import CubeCatalog, CubeSession
from repro.core.errors import CatalogError, ServerError
from repro.server import AsyncCubeServer, serve_tcp

DIMS = ["A", "B", "C"]


def _rows(rng: random.Random, count: int):
    return [
        tuple(f"{dim.lower()}{rng.randrange(4)}" for dim in DIMS)
        for _ in range(count)
    ]


@pytest.fixture
def catalog(tmp_path):
    return CubeCatalog(str(tmp_path / "cubes"))


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------- #
# Basic serving                                                                #
# --------------------------------------------------------------------------- #


def test_query_execute_and_append(catalog):
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, query_workers=2) as server:
            answer = await server.query("sales", {"store": "s1"})
            assert answer.count == 2
            rollup = await server.execute(
                "sales", {"op": "rollup", "dims": ["product"]}
            )
            assert {a.coordinates_dict()["product"] for a in rollup} == {"p1", "p2"}
            report = await server.append("sales", [("s3", "p3")])
            assert report.appended_rows == 1
            assert (await server.query("sales", {"store": "s3"})).count == 1
            stats = server.stats()
            assert stats["counters"]["appends"] == 1
            assert stats["counters"]["queries"] >= 3
            assert "sales" in stats["cubes"]

    run(scenario())


def test_execute_many_preserves_order_and_batches(catalog):
    catalog.create("sales", [("s1", "p1"), ("s2", "p2")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, max_batch=4) as server:
            specs = [{"store": "s1"}, {"store": "s2"}, {"store": "nope"},
                     {"op": "rollup", "dims": ["store"]}]
            results = await server.execute_many("sales", specs)
            assert results[0].count == 1
            assert results[1].count == 1
            assert results[2].count is None
            assert len(results[3]) == 2
            assert await server.execute_many("sales", []) == []

    run(scenario())


def test_bad_specs_fail_their_item_not_the_batch(catalog):
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            good, bad = await asyncio.gather(
                server.query("sales", {"store": "s1"}),
                server.query("sales", {"nope": "x"}),
                return_exceptions=True,
            )
            assert not isinstance(good, Exception) and good.count == 1
            assert isinstance(bad, Exception)

    run(scenario())


def test_unknown_cube_raises_catalog_error(catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            with pytest.raises(CatalogError):
                await server.query("ghost", {"x": 1})

    run(scenario())


def test_server_requires_start(catalog):
    server = AsyncCubeServer(catalog)

    async def scenario():
        with pytest.raises(ServerError, match="not running"):
            await server.query("sales", {})

    run(scenario())


def test_refresh_pool_arguments_are_exclusive(catalog):
    with pytest.raises(ServerError, match="not both"):
        AsyncCubeServer(
            catalog, refresh_processes=1, refresh_executor=ThreadPoolExecutor(1)
        )


def test_create_drop_save_through_the_server(catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            info = await server.create(
                "web", [("u1", "/a"), ("u2", "/b")], schema=["user", "path"]
            )
            assert info["rows"] == 2
            assert server.list_cubes() == ["web"]
            await server.append("web", [("u3", "/c")])
            await server.save("web")
            await server.drop("web")
            assert server.list_cubes() == []

    run(scenario())
    assert catalog.list() == []


def test_describe_runs_off_the_event_loop(catalog):
    """``describe`` scans the append journal on disk; the server must route
    it through the maintenance pool, never call into the catalog from a
    coroutine directly (repro.lint RL003 guards the lexical version of this;
    this test guards the behavioural one)."""
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            loop_thread = [None]
            original = catalog.describe

            def spy(name):
                import threading

                loop_thread[0] = threading.current_thread()
                return original(name)

            catalog.describe = spy
            try:
                info = await server.describe("sales")
            finally:
                catalog.describe = original
            assert info["rows"] == 1
            assert info["pending_appends"] == 0
            import threading

            assert loop_thread[0] is not threading.main_thread()

    run(scenario())


def test_compact_through_the_server(catalog):
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            for index in range(3):
                await server.append("sales", [(f"s{index + 3}", "p1")])
            assert catalog.describe("sales")["pending_appends"] == 3
            report = await server.compact("sales")
            assert report["mode"] == "incremental"
            assert catalog.describe("sales")["pending_appends"] == 0
            # Queries keep answering the folded state.
            assert (await server.query("sales", {"store": "s3"})).count == 1
            stats = server.stats()
            assert stats["counters"]["compactions"] == 1
            assert stats["compaction"]["incremental"] == 1
            # Nothing pending: the second fold is an explicit no-op.
            second = await server.compact("sales")
            assert second["mode"] == "none"
            assert server.stats()["counters"]["compactions"] == 1

    run(scenario())
    # The fold is durable: a fresh catalog replays segments, not journals.
    reopened = CubeCatalog(catalog.directory)
    assert reopened.describe("sales")["segments"]
    assert reopened.open("sales").point({"store": "s4"}).count == 1


def test_back_pressure_bounds_the_queue(catalog):
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, max_pending=2, max_batch=1) as server:
            # Flooding more work than the bound: everything completes (the
            # queue blocks producers instead of growing without limit).
            answers = await asyncio.gather(
                *(server.query("sales", {"store": "s1"}) for _ in range(32))
            )
            assert all(answer.count == 1 for answer in answers)
            assert server.stats()["cubes"]["sales"]["pending"] == 0

    run(scenario())


# --------------------------------------------------------------------------- #
# The acceptance criterion: two cubes, concurrent appends + queries           #
# --------------------------------------------------------------------------- #


def test_interleaved_appends_and_queries_on_two_cubes(catalog):
    rng = random.Random(17)
    bases = {"north": _rows(rng, 40), "south": _rows(rng, 40)}
    batches = {
        name: [_rows(rng, 6) for _ in range(4)] for name in bases
    }
    for name, rows in bases.items():
        catalog.create(name, rows, schema=DIMS)

    # Ground truth per cube per version.
    specs = [{}] + [
        {dim: f"{dim.lower()}{i}"} for dim in DIMS for i in range(4)
    ]
    expected = {}
    finals = {}
    for name in bases:
        prefix = list(bases[name])
        versions = [CubeSession.from_rows(list(prefix), schema=DIMS).build()]
        for batch in batches[name]:
            prefix.extend(batch)
            versions.append(CubeSession.from_rows(list(prefix), schema=DIMS).build())
        expected[name] = [
            {tuple(sorted(s.items())): cube.point(s).count for s in specs}
            for cube in versions
        ]
        finals[name] = versions[-1]

    errors = []

    async def appender(server, name):
        for batch in batches[name]:
            report = await server.append(name, batch)
            assert report.appended_rows == len(batch)

    async def querier(server, name, seed):
        worker_rng = random.Random(seed)
        for _ in range(120):
            spec = worker_rng.choice(specs)
            key = tuple(sorted(spec.items()))
            answer = await server.query(name, spec)
            allowed = {table[key] for table in expected[name]}
            if answer.count not in allowed:
                errors.append((name, spec, answer.count))

    async def scenario():
        pool = ThreadPoolExecutor(2)
        try:
            async with AsyncCubeServer(
                catalog, query_workers=3, refresh_executor=pool
            ) as server:
                tasks = [appender(server, name) for name in bases]
                for index, name in enumerate(("north", "south", "north", "south")):
                    tasks.append(querier(server, name, 1000 + index))
                await asyncio.gather(*tasks)
                counters = server.stats()["counters"]
                assert counters["appends"] == 8
                assert counters["queries"] >= 480
        finally:
            pool.shutdown()

    run(scenario())
    assert not errors, f"torn reads: {errors[:5]}"
    for name in bases:
        served = catalog.open(name)
        assert served.version == len(batches[name])
        assert served.cube.same_cells(finals[name].cube), name


# --------------------------------------------------------------------------- #
# TCP protocol                                                                 #
# --------------------------------------------------------------------------- #


async def _rpc(reader, writer, request):
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_tcp_protocol_round_trip(catalog):
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                pong = await _rpc(reader, writer, {"op": "ping", "id": 7})
                assert pong == {"id": 7, "ok": True, "result": "pong"}

                listed = await _rpc(reader, writer, {"op": "list"})
                assert listed["result"] == ["sales"]

                answer = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                )
                assert answer["ok"] and answer["result"]["count"] == 2
                assert answer["result"]["coordinates"] == {"store": "s1"}

                report = await _rpc(
                    reader, writer,
                    {"op": "append", "cube": "sales", "rows": [["s9", "p9"]]},
                )
                assert report["ok"] and report["result"]["appended_rows"] == 1

                many = await _rpc(
                    reader, writer,
                    {"op": "query_many", "cube": "sales",
                     "q": [{"store": "s9"},
                           {"op": "rollup", "dims": ["store"]}]},
                )
                assert many["result"][0]["count"] == 1
                assert {entry["coordinates"]["store"]
                        for entry in many["result"][1]} == {"s1", "s2", "s9"}

                described = await _rpc(
                    reader, writer, {"op": "describe", "cube": "sales"}
                )
                assert described["result"]["pending_appends"] == 1

                compacted = await _rpc(
                    reader, writer, {"op": "compact", "cube": "sales"}
                )
                assert compacted["ok"]
                assert compacted["result"]["mode"] == "incremental"
                assert compacted["result"]["folded_rows"] == 1

                bad_mode = await _rpc(
                    reader, writer,
                    {"op": "compact", "cube": "sales", "mode": 7},
                )
                assert not bad_mode["ok"]

                saved = await _rpc(reader, writer, {"op": "save", "cube": "sales"})
                assert saved["ok"]

                missing = await _rpc(
                    reader, writer, {"op": "query", "cube": "ghost", "q": {}}
                )
                assert not missing["ok"]
                assert missing["error"]["type"] == "CatalogError"

                bogus = await _rpc(reader, writer, {"op": "bogus"})
                assert not bogus["ok"] and "unknown op" in bogus["error"]["message"]

                not_json = await _rpc(reader, writer, {"op": None})
                assert not not_json["ok"]

                stats = await _rpc(reader, writer, {"op": "stats"})
                assert stats["result"]["counters"]["appends"] == 1
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())
    # The save over TCP persisted the append for a fresh process.
    reopened = CubeCatalog(catalog.directory).open("sales")
    assert reopened.point({"store": "s9"}).count == 1


def test_tcp_unhashable_spec_value_keeps_the_connection(catalog):
    """Valid JSON that breaks encoding (a list value) must answer, not EOF."""
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                broken = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": ["x"]}},
                )
                assert not broken["ok"]
                assert "TypeError" in broken["error"]["message"]
                # Non-dict specs inside query_many must not kill it either.
                broken = await _rpc(
                    reader, writer,
                    {"op": "query_many", "cube": "sales", "q": ["nope"]},
                )
                assert not broken["ok"]
                # The connection survives and keeps answering.
                alive = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                )
                assert alive["ok"] and alive["result"]["count"] == 1
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())


def test_tcp_malformed_json_reports_an_error(catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert not response["ok"]
                # The connection survives a bad line.
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["result"] == "pong"
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())


def test_cli_entrypoint_parses_and_serves(tmp_path):
    """The __main__ module wires argparse → catalog → server → TCP."""
    from repro.server.__main__ import build_parser, run_server

    directory = str(tmp_path / "cubes")
    CubeCatalog(directory).create(
        "sales", [("s1", "p1")], schema=["store", "product"]
    )
    args = build_parser().parse_args([directory, "--port", "0", "--max-batch", "8"])
    assert args.catalog == directory and args.max_batch == 8

    async def scenario():
        task = asyncio.get_running_loop().create_task(run_server(args))
        try:
            # The server prints its bound socket; give it a moment to bind,
            # then tear it down the way Ctrl-C would.
            await asyncio.sleep(0.3)
            assert not task.done()
        finally:
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

    run(scenario())


# --------------------------------------------------------------------------- #
# Fault injection: the TCP layer under network pathologies                     #
# --------------------------------------------------------------------------- #


async def _serving(catalog, **server_kwargs):
    """(server, tcp, port) for the fault tests; caller tears down."""
    server = AsyncCubeServer(catalog, **server_kwargs)
    await server.start()
    tcp = await serve_tcp(server, port=0)
    return server, tcp, tcp.sockets[0].getsockname()[1]


async def _teardown(server, tcp):
    tcp.close()
    await tcp.wait_closed()
    await server.stop()


async def _assert_healthy(port, expect_count=1):
    """A fresh direct connection still gets real answers."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        alive = await _rpc(
            reader, writer,
            {"op": "query", "cube": "sales", "q": {"store": "s1"}},
        )
        assert alive["ok"] and alive["result"]["count"] == expect_count
    finally:
        writer.close()
        await writer.wait_closed()


def test_tcp_torn_request_drops_one_connection_cleanly(catalog):
    """A connection torn mid-request (partial JSON, then RST) dies alone:
    no other connection is poisoned and no queue slot leaks."""
    from repro.loadgen.faults import FaultyProxy

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        server, tcp, port = await _serving(catalog)
        try:
            async with FaultyProxy(
                "127.0.0.1", port, fault="torn_request", fault_bytes=10
            ) as proxy:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                writer.write(
                    b'{"op": "query", "cube": "sales", "q": {"store": "s1"}}\n'
                )
                await writer.drain()
                # The server saw 10 bytes and an abort: the only defensible
                # outcome on this connection is a clean drop (EOF/RST here).
                try:
                    assert await reader.readline() == b""
                except (ConnectionError, OSError):
                    pass
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                assert proxy.connections == 1
            await _assert_healthy(port)
            stats = server.stats()
            assert stats["cubes"]["sales"]["pending"] == 0
            assert not stats["cubes"]["sales"]["appending"]
        finally:
            await _teardown(server, tcp)

    run(scenario())


def test_tcp_corrupt_line_answers_ok_false_and_serves_on(catalog):
    """A corrupted-but-newline-terminated line must get {"ok": false} —
    the connection and the rest of the server keep working."""
    from repro.loadgen.faults import FaultyProxy

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        server, tcp, port = await _serving(catalog)
        try:
            async with FaultyProxy(
                "127.0.0.1", port, fault="corrupt_line", fault_bytes=12
            ) as proxy:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                try:
                    broken = await _rpc(
                        reader, writer,
                        {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                    )
                    assert broken["ok"] is False
                    # The same (still corrupting) connection answers again:
                    # every line is truncated, every answer is an error,
                    # nothing hangs or dies.
                    second = await _rpc(reader, writer, {"op": "ping"})
                    assert second["ok"] is False
                finally:
                    writer.close()
                    await writer.wait_closed()
            await _assert_healthy(port)
            assert server.stats()["cubes"]["sales"]["pending"] == 0
        finally:
            await _teardown(server, tcp)

    run(scenario())


def test_tcp_abort_mid_response_spares_other_connections(catalog):
    """An RST while the response is in flight kills that connection only;
    a concurrently open connection keeps streaming answers."""
    from repro.loadgen.faults import FaultyProxy

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        server, tcp, port = await _serving(catalog)
        try:
            healthy_reader, healthy_writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            try:
                async with FaultyProxy(
                    "127.0.0.1", port, fault="abort_mid_response",
                    fault_bytes=6,
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer.write(
                        b'{"op": "query", "cube": "sales",'
                        b' "q": {"store": "s1"}}\n'
                    )
                    await writer.drain()
                    # At most fault_bytes of the response arrive, then RST.
                    try:
                        partial_line = await reader.readline()
                        assert len(partial_line) <= 6
                    except (ConnectionError, OSError):
                        pass
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                # The concurrent connection never noticed.
                for _ in range(3):
                    answer = await _rpc(
                        healthy_reader, healthy_writer,
                        {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                    )
                    assert answer["ok"] and answer["result"]["count"] == 1
            finally:
                healthy_writer.close()
                await healthy_writer.wait_closed()
            assert server.stats()["cubes"]["sales"]["pending"] == 0
        finally:
            await _teardown(server, tcp)

    run(scenario())


def test_tcp_slow_loris_does_not_block_other_connections(catalog):
    """One byte-at-a-time writer must not head-of-line-block anyone else."""
    from repro.loadgen.faults import FaultyProxy

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        server, tcp, port = await _serving(catalog)
        try:
            async with FaultyProxy(
                "127.0.0.1", port, fault="slow_loris", delay=0.02
            ) as proxy:
                loris_reader, loris_writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                loris_writer.write(b'{"op": "ping"}\n')
                await loris_writer.drain()
                loris = asyncio.get_running_loop().create_task(
                    loris_reader.readline()
                )
                try:
                    # While the loris line dribbles in (~0.3s), a normal
                    # connection gets many answers.
                    import time as time_module
                    started = time_module.monotonic()
                    await _assert_healthy(port)
                    assert time_module.monotonic() - started < 0.25
                    # And the dribbled request itself still answers.
                    response = json.loads(await loris)
                    assert response["ok"] and response["result"] == "pong"
                finally:
                    if not loris.done():
                        loris.cancel()
                    loris_writer.close()
                    try:
                        await loris_writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
            assert server.stats()["cubes"]["sales"]["pending"] == 0
        finally:
            await _teardown(server, tcp)

    run(scenario())


# --------------------------------------------------------------------------- #
# Per-request timeouts                                                         #
# --------------------------------------------------------------------------- #


def test_query_timeout_raises_and_counts(catalog):
    import time as time_module

    from repro.core.errors import ServerTimeout

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, request_timeout=0.15) as server:
            real = server._run_batch

            def wedged(cube, specs):
                time_module.sleep(0.5)
                return real(cube, specs)

            server._run_batch = wedged
            with pytest.raises(ServerTimeout, match="timed out"):
                await server.query("sales", {"store": "s1"})
            assert server.stats()["counters"]["timeouts"] == 1
            server._run_batch = real
            # Let the abandoned batch finish on its worker thread, then
            # verify the server is not wedged: the next query answers.
            await asyncio.sleep(0.5)
            answer = await server.query("sales", {"store": "s1"})
            assert answer.count == 1
            assert server.stats()["request_timeout"] == 0.15

    run(scenario())


def test_append_timeout_releases_the_lock(catalog):
    import time as time_module

    from repro.core.errors import ServerTimeout

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, request_timeout=0.2) as server:
            real = catalog.append

            def wedged(name, rows, **kwargs):
                time_module.sleep(0.5)
                return real(name, rows, **kwargs)

            catalog.append = wedged
            with pytest.raises(ServerTimeout, match="mid-merge"):
                await server.append("sales", [("s2", "p2")])
            catalog.append = real
            assert server.stats()["counters"]["timeouts"] == 1
            # The lock came back: a follow-up append goes through.
            report = await server.append("sales", [("s3", "p3")])
            assert report.appended_rows == 1
            assert not server.stats()["cubes"]["sales"]["appending"]

    run(scenario())


def test_tcp_timeout_answers_ok_false_with_server_timeout(catalog):
    import time as time_module

    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        server, tcp, port = await _serving(catalog, request_timeout=0.15)
        try:
            real = server._run_batch

            def wedged(cube, specs):
                time_module.sleep(0.5)
                return real(cube, specs)

            server._run_batch = wedged
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                slow = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                )
                assert slow["ok"] is False
                assert slow["error"]["type"] == "ServerTimeout"
                server._run_batch = real
                # Let the abandoned batch drain off its worker thread;
                # same connection, next request: normal service resumed.
                await asyncio.sleep(0.5)
                alive = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                )
                assert alive["ok"] and alive["result"]["count"] == 1
            finally:
                writer.close()
                await writer.wait_closed()
        finally:
            await _teardown(server, tcp)

    run(scenario())


def test_request_timeout_must_be_positive(catalog):
    from repro.core.errors import ServerError as _ServerError

    with pytest.raises(_ServerError, match="request_timeout"):
        AsyncCubeServer(catalog, request_timeout=0.0)


# --------------------------------------------------------------------------- #
# Server-side latency accounting                                               #
# --------------------------------------------------------------------------- #


def test_stats_expose_latency_histograms_and_queue_hwm(catalog):
    catalog.create("sales", [("s1", "p1"), ("s2", "p2")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, query_workers=2) as server:
            await asyncio.gather(
                *(server.query("sales", {"store": "s1"}) for _ in range(20))
            )
            await server.append("sales", [("s3", "p3")])
            stats = server.stats()
            latency = stats["latency"]
            assert latency["query"]["count"] == 20
            assert latency["query"]["p99_ms"] >= latency["query"]["p50_ms"] >= 0
            assert latency["append"]["count"] == 1
            assert latency["append"]["max_ms"] > 0
            # The queue saw depth while the gather burst was in flight.
            assert stats["cubes"]["sales"]["pending_hwm"] >= 1
            assert stats["cubes"]["sales"]["pending"] == 0
            assert stats["request_timeout"] is None

    run(scenario())


def test_merge_never_blocks_the_event_loop(catalog):
    """Chunked copy-on-publish merges must yield: no loop stall over 250ms.

    The heartbeat task measures the longest stretch the event loop went
    unscheduled while appends merge on the maintenance pool (the GIL is the
    contended resource — the chunked merge's yield points are what keep the
    stretch bounded), and the server's own histograms cross-check that
    queries issued mid-merge were answered inside the same bound.
    """
    import time

    rng = random.Random(97)
    catalog.create("sales", _rows(rng, 400), schema=DIMS)

    async def scenario():
        async with AsyncCubeServer(catalog, query_workers=2) as server:
            gaps = []
            stop = asyncio.Event()

            async def heartbeat():
                last = time.monotonic()
                while not stop.is_set():
                    await asyncio.sleep(0.005)
                    now = time.monotonic()
                    gaps.append(now - last)
                    last = now

            async def query_some():
                for _ in range(10):
                    await server.query("sales", {"A": f"a{rng.randrange(4)}"})

            beat = asyncio.create_task(heartbeat())
            for _ in range(3):
                await asyncio.gather(
                    server.append("sales", _rows(rng, 150)),
                    query_some(),
                )
            stop.set()
            await beat
            assert gaps, "heartbeat never ran while appends were in flight"
            assert max(gaps) < 0.25, (
                f"event loop starved for {max(gaps) * 1e3:.0f}ms mid-merge"
            )
            stats = server.stats()
            assert stats["counters"]["appends"] == 3
            assert stats["latency"]["query"]["count"] >= 30
            # Server-side query latency brackets queueing + execution; a
            # merge that hogged the loop or the GIL would blow this bound.
            assert stats["latency"]["query"]["p99_ms"] <= 250.0
            assert stats["cubes"]["sales"]["pending_hwm"] <= server.max_pending

    run(scenario())
