"""Tests for the asyncio serving layer (:mod:`repro.server`) and its TCP face.

The acceptance criterion from the ISSUE: one :class:`AsyncCubeServer`
sustains concurrent appends and queries on two catalog cubes with zero torn
reads — every answer matches some published version of its cube, and the
final cubes equal from-scratch rebuilds.  The rest covers the serving
mechanics: batching, back-pressure, per-item error isolation, lifecycle,
and the line-JSON TCP protocol.
"""

from __future__ import annotations

import asyncio
import json
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import CubeCatalog, CubeSession
from repro.core.errors import CatalogError, ServerError
from repro.server import AsyncCubeServer, serve_tcp

DIMS = ["A", "B", "C"]


def _rows(rng: random.Random, count: int):
    return [
        tuple(f"{dim.lower()}{rng.randrange(4)}" for dim in DIMS)
        for _ in range(count)
    ]


@pytest.fixture
def catalog(tmp_path):
    return CubeCatalog(str(tmp_path / "cubes"))


def run(coroutine):
    return asyncio.run(coroutine)


# --------------------------------------------------------------------------- #
# Basic serving                                                                #
# --------------------------------------------------------------------------- #


def test_query_execute_and_append(catalog):
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, query_workers=2) as server:
            answer = await server.query("sales", {"store": "s1"})
            assert answer.count == 2
            rollup = await server.execute(
                "sales", {"op": "rollup", "dims": ["product"]}
            )
            assert {a.coordinates_dict()["product"] for a in rollup} == {"p1", "p2"}
            report = await server.append("sales", [("s3", "p3")])
            assert report.appended_rows == 1
            assert (await server.query("sales", {"store": "s3"})).count == 1
            stats = server.stats()
            assert stats["counters"]["appends"] == 1
            assert stats["counters"]["queries"] >= 3
            assert "sales" in stats["cubes"]

    run(scenario())


def test_execute_many_preserves_order_and_batches(catalog):
    catalog.create("sales", [("s1", "p1"), ("s2", "p2")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, max_batch=4) as server:
            specs = [{"store": "s1"}, {"store": "s2"}, {"store": "nope"},
                     {"op": "rollup", "dims": ["store"]}]
            results = await server.execute_many("sales", specs)
            assert results[0].count == 1
            assert results[1].count == 1
            assert results[2].count is None
            assert len(results[3]) == 2
            assert await server.execute_many("sales", []) == []

    run(scenario())


def test_bad_specs_fail_their_item_not_the_batch(catalog):
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            good, bad = await asyncio.gather(
                server.query("sales", {"store": "s1"}),
                server.query("sales", {"nope": "x"}),
                return_exceptions=True,
            )
            assert not isinstance(good, Exception) and good.count == 1
            assert isinstance(bad, Exception)

    run(scenario())


def test_unknown_cube_raises_catalog_error(catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            with pytest.raises(CatalogError):
                await server.query("ghost", {"x": 1})

    run(scenario())


def test_server_requires_start(catalog):
    server = AsyncCubeServer(catalog)

    async def scenario():
        with pytest.raises(ServerError, match="not running"):
            await server.query("sales", {})

    run(scenario())


def test_refresh_pool_arguments_are_exclusive(catalog):
    with pytest.raises(ServerError, match="not both"):
        AsyncCubeServer(
            catalog, refresh_processes=1, refresh_executor=ThreadPoolExecutor(1)
        )


def test_create_drop_save_through_the_server(catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            info = await server.create(
                "web", [("u1", "/a"), ("u2", "/b")], schema=["user", "path"]
            )
            assert info["rows"] == 2
            assert server.list_cubes() == ["web"]
            await server.append("web", [("u3", "/c")])
            await server.save("web")
            await server.drop("web")
            assert server.list_cubes() == []

    run(scenario())
    assert catalog.list() == []


def test_compact_through_the_server(catalog):
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            for index in range(3):
                await server.append("sales", [(f"s{index + 3}", "p1")])
            assert catalog.describe("sales")["pending_appends"] == 3
            report = await server.compact("sales")
            assert report["mode"] == "incremental"
            assert catalog.describe("sales")["pending_appends"] == 0
            # Queries keep answering the folded state.
            assert (await server.query("sales", {"store": "s3"})).count == 1
            stats = server.stats()
            assert stats["counters"]["compactions"] == 1
            assert stats["compaction"]["incremental"] == 1
            # Nothing pending: the second fold is an explicit no-op.
            second = await server.compact("sales")
            assert second["mode"] == "none"
            assert server.stats()["counters"]["compactions"] == 1

    run(scenario())
    # The fold is durable: a fresh catalog replays segments, not journals.
    reopened = CubeCatalog(catalog.directory)
    assert reopened.describe("sales")["segments"]
    assert reopened.open("sales").point({"store": "s4"}).count == 1


def test_back_pressure_bounds_the_queue(catalog):
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog, max_pending=2, max_batch=1) as server:
            # Flooding more work than the bound: everything completes (the
            # queue blocks producers instead of growing without limit).
            answers = await asyncio.gather(
                *(server.query("sales", {"store": "s1"}) for _ in range(32))
            )
            assert all(answer.count == 1 for answer in answers)
            assert server.stats()["cubes"]["sales"]["pending"] == 0

    run(scenario())


# --------------------------------------------------------------------------- #
# The acceptance criterion: two cubes, concurrent appends + queries           #
# --------------------------------------------------------------------------- #


def test_interleaved_appends_and_queries_on_two_cubes(catalog):
    rng = random.Random(17)
    bases = {"north": _rows(rng, 40), "south": _rows(rng, 40)}
    batches = {
        name: [_rows(rng, 6) for _ in range(4)] for name in bases
    }
    for name, rows in bases.items():
        catalog.create(name, rows, schema=DIMS)

    # Ground truth per cube per version.
    specs = [{}] + [
        {dim: f"{dim.lower()}{i}"} for dim in DIMS for i in range(4)
    ]
    expected = {}
    finals = {}
    for name in bases:
        prefix = list(bases[name])
        versions = [CubeSession.from_rows(list(prefix), schema=DIMS).build()]
        for batch in batches[name]:
            prefix.extend(batch)
            versions.append(CubeSession.from_rows(list(prefix), schema=DIMS).build())
        expected[name] = [
            {tuple(sorted(s.items())): cube.point(s).count for s in specs}
            for cube in versions
        ]
        finals[name] = versions[-1]

    errors = []

    async def appender(server, name):
        for batch in batches[name]:
            report = await server.append(name, batch)
            assert report.appended_rows == len(batch)

    async def querier(server, name, seed):
        worker_rng = random.Random(seed)
        for _ in range(120):
            spec = worker_rng.choice(specs)
            key = tuple(sorted(spec.items()))
            answer = await server.query(name, spec)
            allowed = {table[key] for table in expected[name]}
            if answer.count not in allowed:
                errors.append((name, spec, answer.count))

    async def scenario():
        pool = ThreadPoolExecutor(2)
        try:
            async with AsyncCubeServer(
                catalog, query_workers=3, refresh_executor=pool
            ) as server:
                tasks = [appender(server, name) for name in bases]
                for index, name in enumerate(("north", "south", "north", "south")):
                    tasks.append(querier(server, name, 1000 + index))
                await asyncio.gather(*tasks)
                counters = server.stats()["counters"]
                assert counters["appends"] == 8
                assert counters["queries"] >= 480
        finally:
            pool.shutdown()

    run(scenario())
    assert not errors, f"torn reads: {errors[:5]}"
    for name in bases:
        served = catalog.open(name)
        assert served.version == len(batches[name])
        assert served.cube.same_cells(finals[name].cube), name


# --------------------------------------------------------------------------- #
# TCP protocol                                                                 #
# --------------------------------------------------------------------------- #


async def _rpc(reader, writer, request):
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    return json.loads(await reader.readline())


def test_tcp_protocol_round_trip(catalog):
    catalog.create("sales", [("s1", "p1"), ("s1", "p2"), ("s2", "p1")],
                   schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                pong = await _rpc(reader, writer, {"op": "ping", "id": 7})
                assert pong == {"id": 7, "ok": True, "result": "pong"}

                listed = await _rpc(reader, writer, {"op": "list"})
                assert listed["result"] == ["sales"]

                answer = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                )
                assert answer["ok"] and answer["result"]["count"] == 2
                assert answer["result"]["coordinates"] == {"store": "s1"}

                report = await _rpc(
                    reader, writer,
                    {"op": "append", "cube": "sales", "rows": [["s9", "p9"]]},
                )
                assert report["ok"] and report["result"]["appended_rows"] == 1

                many = await _rpc(
                    reader, writer,
                    {"op": "query_many", "cube": "sales",
                     "q": [{"store": "s9"},
                           {"op": "rollup", "dims": ["store"]}]},
                )
                assert many["result"][0]["count"] == 1
                assert {entry["coordinates"]["store"]
                        for entry in many["result"][1]} == {"s1", "s2", "s9"}

                described = await _rpc(
                    reader, writer, {"op": "describe", "cube": "sales"}
                )
                assert described["result"]["pending_appends"] == 1

                compacted = await _rpc(
                    reader, writer, {"op": "compact", "cube": "sales"}
                )
                assert compacted["ok"]
                assert compacted["result"]["mode"] == "incremental"
                assert compacted["result"]["folded_rows"] == 1

                bad_mode = await _rpc(
                    reader, writer,
                    {"op": "compact", "cube": "sales", "mode": 7},
                )
                assert not bad_mode["ok"]

                saved = await _rpc(reader, writer, {"op": "save", "cube": "sales"})
                assert saved["ok"]

                missing = await _rpc(
                    reader, writer, {"op": "query", "cube": "ghost", "q": {}}
                )
                assert not missing["ok"]
                assert missing["error"]["type"] == "CatalogError"

                bogus = await _rpc(reader, writer, {"op": "bogus"})
                assert not bogus["ok"] and "unknown op" in bogus["error"]["message"]

                not_json = await _rpc(reader, writer, {"op": None})
                assert not not_json["ok"]

                stats = await _rpc(reader, writer, {"op": "stats"})
                assert stats["result"]["counters"]["appends"] == 1
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())
    # The save over TCP persisted the append for a fresh process.
    reopened = CubeCatalog(catalog.directory).open("sales")
    assert reopened.point({"store": "s9"}).count == 1


def test_tcp_unhashable_spec_value_keeps_the_connection(catalog):
    """Valid JSON that breaks encoding (a list value) must answer, not EOF."""
    catalog.create("sales", [("s1", "p1")], schema=["store", "product"])

    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                broken = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": ["x"]}},
                )
                assert not broken["ok"]
                assert "TypeError" in broken["error"]["message"]
                # Non-dict specs inside query_many must not kill it either.
                broken = await _rpc(
                    reader, writer,
                    {"op": "query_many", "cube": "sales", "q": ["nope"]},
                )
                assert not broken["ok"]
                # The connection survives and keeps answering.
                alive = await _rpc(
                    reader, writer,
                    {"op": "query", "cube": "sales", "q": {"store": "s1"}},
                )
                assert alive["ok"] and alive["result"]["count"] == 1
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())


def test_tcp_malformed_json_reports_an_error(catalog):
    async def scenario():
        async with AsyncCubeServer(catalog) as server:
            tcp = await serve_tcp(server, port=0)
            port = tcp.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                response = json.loads(await reader.readline())
                assert not response["ok"]
                # The connection survives a bad line.
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["result"] == "pong"
            finally:
                writer.close()
                await writer.wait_closed()
                tcp.close()
                await tcp.wait_closed()

    run(scenario())


def test_cli_entrypoint_parses_and_serves(tmp_path):
    """The __main__ module wires argparse → catalog → server → TCP."""
    from repro.server.__main__ import build_parser, run_server

    directory = str(tmp_path / "cubes")
    CubeCatalog(directory).create(
        "sales", [("s1", "p1")], schema=["store", "product"]
    )
    args = build_parser().parse_args([directory, "--port", "0", "--max-batch", "8"])
    assert args.catalog == directory and args.max_batch == 8

    async def scenario():
        task = asyncio.get_running_loop().create_task(run_server(args))
        try:
            # The server prints its bound socket; give it a moment to bind,
            # then tear it down the way Ctrl-C would.
            await asyncio.sleep(0.3)
            assert not task.done()
        finally:
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task

    run(scenario())
