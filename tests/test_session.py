"""Tests for the named-schema session API (repro.session).

Covers the fluent :class:`CubeSession` chain, named query translation on
:class:`ServingCube`, the ``"auto"`` algorithm planner (Figure 15 regions),
``explain()``, batching, and — the load-bearing property — that named-session
answers equal positional :class:`QueryEngine` answers (and naive
recomputation) on randomized relations across *every* cell of the lattice.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro import (
    Avg,
    CubeSchema,
    CubeSession,
    Relation,
    Sum,
    algorithms_supporting_closed,
    compute_closed_cube,
    open_query_engine,
    plan_algorithm,
)
from repro.core.cube import count_matching_tuples
from repro.core.errors import QueryError, SchemaError
from repro.core.relation import Schema
from repro.session.planner import RelationStats

RETAIL_ROWS = [
    ("nyc", "shoe", "mon", 10.0),
    ("nyc", "shoe", "tue", 20.0),
    ("nyc", "sock", "mon", 5.0),
    ("sfo", "shoe", "mon", 30.0),
    ("sfo", "sock", "tue", 5.0),
    ("nyc", "shoe", "mon", 40.0),
]
RETAIL_SCHEMA = {"dimensions": ["store", "product", "day"], "measures": ["price"]}


def retail_session() -> CubeSession:
    return CubeSession.from_rows(RETAIL_ROWS, schema=RETAIL_SCHEMA)


# --------------------------------------------------------------------------- #
# Schema handling                                                              #
# --------------------------------------------------------------------------- #


def test_schema_coercion_accepts_all_declared_forms():
    expected = CubeSchema(("a", "b"), ("m",))
    assert CubeSchema.coerce(expected) is expected
    assert CubeSchema.coerce({"dimensions": ["a", "b"], "measures": ["m"]}) == expected
    assert CubeSchema.coerce(["a", "b"]) == CubeSchema(("a", "b"))
    assert CubeSchema.coerce(Schema(("a", "b"), ("m",))) == expected


@pytest.mark.parametrize(
    "bad",
    [
        "store",                              # a single string is ambiguous
        {"dims": ["a"]},                      # unknown mapping key
        {"measures": ["m"]},                  # dimensions missing
        ["a", "a"],                           # duplicates
        [],                                   # no dimensions
        [1, 2],                               # non-string names
    ],
)
def test_schema_coercion_rejects_malformed_specs(bad):
    with pytest.raises(SchemaError):
        CubeSchema.coerce(bad)


def test_from_rows_accepts_mapping_rows():
    rows = [dict(zip(("store", "product", "day", "price"), row)) for row in RETAIL_ROWS]
    cube = CubeSession.from_rows(rows, schema=RETAIL_SCHEMA).closed().build()
    assert cube.point({"store": "nyc"}).count == 4


def test_from_rows_mapping_rows_require_schema():
    with pytest.raises(SchemaError):
        CubeSession.from_rows([{"a": 1}])


def test_from_rows_rejects_width_mismatch_and_missing_columns():
    with pytest.raises(SchemaError, match="columns"):
        CubeSession.from_rows([("nyc", "shoe")], schema=RETAIL_SCHEMA)
    with pytest.raises(SchemaError, match="missing"):
        CubeSession.from_rows([{"store": "nyc"}], schema=RETAIL_SCHEMA)


def test_measures_validated_against_schema():
    session = retail_session()
    with pytest.raises(SchemaError, match="cost"):
        session.measures(Sum("cost"))
    with pytest.raises(SchemaError, match="measure spec"):
        session.measures("sum(price)")


# --------------------------------------------------------------------------- #
# Named queries                                                                #
# --------------------------------------------------------------------------- #


def test_point_slice_rollup_speak_names_and_raw_values():
    cube = retail_session().closed(min_sup=1).measures(Sum("price"), Avg("price")).build()
    answer = cube.point({"store": "nyc", "product": "shoe"})
    assert answer.count == 3
    assert answer.measure("sum(price)") == 70.0
    assert answer.measure("avg(price)") == pytest.approx(70.0 / 3)

    by_store = cube.rollup(["store"])
    assert {a.coordinates_dict()["store"]: a.count for a in by_store} == {
        "nyc": 4,
        "sfo": 2,
    }

    sliced = cube.slice({"day": "mon"}, group_by=["store"])
    assert {a.coordinates_dict()["store"]: a.count for a in sliced} == {
        "nyc": 3,
        "sfo": 1,
    }
    assert cube.rollup(["store"]) == cube.slice({}, group_by=["store"])


def test_unknown_dimension_name_raises_with_the_valid_names():
    cube = retail_session().closed().build()
    with pytest.raises(QueryError, match="store"):
        cube.point({"region": "nyc"})
    with pytest.raises(QueryError, match="store"):
        cube.slice({}, group_by=["region"])


def test_unseen_value_is_a_not_found_answer_not_an_error():
    cube = retail_session().closed().build()
    answer = cube.point({"store": "chicago"})
    assert not answer.found and answer.count is None
    assert answer.coordinates_dict() == {"store": "chicago"}
    assert cube.slice({"store": "chicago"}, group_by=["product"]) == []


def test_below_threshold_cell_is_not_found():
    cube = retail_session().closed(min_sup=3).build()
    assert cube.point({"store": "sfo"}).count is None
    assert cube.point({"store": "nyc"}).count == 4


def test_query_many_preserves_order_and_shapes():
    cube = retail_session().closed().build()
    results = cube.query_many(
        [
            {"store": "nyc"},                                # bare mapping = point
            {"op": "point", "cell": {"store": "sfo"}},
            {"op": "rollup", "dims": ["product"]},
            {"op": "slice", "fixed": {"day": "mon"}, "group_by": ["store"]},
        ]
    )
    assert results[0].count == 4
    assert results[1].count == 2
    assert isinstance(results[2], list) and len(results[2]) == 2
    assert isinstance(results[3], list)
    with pytest.raises(QueryError, match="unknown query op"):
        cube.query_many([{"op": "pivot"}])


def test_query_many_on_a_schema_with_a_dimension_named_op():
    rows = [("read", "alice"), ("read", "bob"), ("write", "alice")]
    cube = CubeSession.from_rows(rows, schema=["op", "user"]).closed().build()
    # A bare point spec on the "op" dimension must not be mistaken for an
    # operation envelope ...
    results = cube.query_many([{"op": "read"}, {"op": "write", "user": "alice"}])
    assert results[0].count == 2 and results[1].count == 1
    # ... while the reserved operation names still select the envelope form.
    assert cube.query_many([{"op": "rollup", "dims": ["user"]}])[0] == cube.rollup(
        ["user"]
    )


def test_unseen_answer_coordinates_follow_schema_order():
    cube = retail_session().closed().build()
    answer = cube.point({"day": "mon", "store": "chicago"})
    assert not answer.found
    assert [name for name, _ in answer.coordinates] == ["store", "day"]
    question = cube.explain({"day": "mon", "store": "chicago"}).question
    assert [name for name, _ in question] == ["store", "day"]


def test_partitioned_session_forwards_dimension_order():
    plain = retail_session().closed().ordered_by("cardinality").build()
    parted = (
        retail_session()
        .closed()
        .ordered_by("cardinality")
        .partitioned("store")
        .build()
    )
    from repro.storage.partition import PartitionedCubeComputer

    assert PartitionedCubeComputer(dimension_order="entropy").dimension_order == "entropy"
    for spec in ({"store": "nyc"}, {"product": "shoe"}, {}):
        assert parted.point(spec).count == plain.point(spec).count


def test_explain_names_the_covering_closed_cell():
    cube = retail_session().closed(min_sup=1).using("auto").build()
    # (store=sfo, product=sock) has one tuple: its closure fixes day=tue too.
    explanation = cube.explain({"store": "sfo", "product": "sock"})
    assert explanation.answer.count == 1
    assert explanation.covering_cell is not None
    covering = dict(explanation.covering_cell)
    assert covering["day"] == "tue" and not explanation.direct_hit
    assert explanation.plan is not None
    assert "query point" in explanation.describe()

    # Second ask: the engine cache now holds the answer.
    assert not explanation.from_cache
    assert cube.explain({"store": "sfo", "product": "sock"}).from_cache

    missing = cube.explain({"store": "chicago"})
    assert not missing.answer.found and missing.covering_cell is None


def test_serving_stats_and_len():
    cube = retail_session().closed().build()
    cube.point({"store": "nyc"})
    stats = cube.stats()
    assert stats["materialised_cells"] == len(cube) > 0
    assert stats["algorithm"] == cube.algorithm
    assert stats["build_seconds"] >= 0


# --------------------------------------------------------------------------- #
# Planner                                                                      #
# --------------------------------------------------------------------------- #


def _dense_relation(seed: int = 7) -> Relation:
    rng = random.Random(seed)
    rows = [
        (f"a{rng.randrange(4)}", f"b{rng.randrange(4)}", f"c{rng.randrange(4)}")
        for _ in range(60)
    ]
    return Relation.from_rows(rows, ["A", "B", "C"])


def _sparse_relation(seed: int = 11) -> Relation:
    rng = random.Random(seed)
    rows = [
        tuple(f"v{dim}_{rng.randrange(10)}" for dim in range(4)) for _ in range(40)
    ]
    return Relation.from_rows(rows, ["A", "B", "C", "D"])


def test_planner_dense_region_picks_star_array():
    plan = plan_algorithm(_dense_relation(), min_sup=1, closed=True)
    assert plan.algorithm == "c-cubing-star-array"
    assert any("dense region" in reason for reason in plan.reasons)


def test_planner_star_region_picks_star():
    plan = plan_algorithm(_sparse_relation(), min_sup=1, closed=True)
    assert plan.algorithm == "c-cubing-star"
    assert any("star region" in reason for reason in plan.reasons)


def test_planner_high_min_sup_picks_mm():
    plan = plan_algorithm(_sparse_relation(), min_sup=100, closed=True)
    assert plan.algorithm == "c-cubing-mm"
    assert any("high-min_sup region" in reason for reason in plan.reasons)


def test_planner_measures_force_the_mm_family():
    plan = plan_algorithm(_dense_relation(), min_sup=1, closed=True, with_measures=True)
    assert plan.algorithm == "c-cubing-mm"
    plan = plan_algorithm(
        _dense_relation(), min_sup=1, closed=False, with_measures=True
    )
    assert plan.algorithm == "mm-cubing"


def test_planner_switch_point_grows_with_regularity():
    uniform = RelationStats(
        num_tuples=100_000, num_dims=6, cardinalities=(100,) * 6, skew=0.0, fill=0.0
    )
    regular = RelationStats(
        num_tuples=100_000, num_dims=6, cardinalities=(100,) * 6, skew=0.5, fill=0.0
    )
    from repro.session.planner import switching_min_sup

    assert switching_min_sup(regular) > switching_min_sup(uniform)


def test_relation_stats_measures_shape():
    stats = RelationStats.from_relation(_dense_relation())
    assert stats.num_tuples == 60 and stats.num_dims == 3
    assert stats.max_cardinality <= 4 and 0.0 <= stats.skew <= 1.0
    assert stats.fill == pytest.approx(
        min(1.0, 60 / (stats.cardinalities[0] * stats.cardinalities[1] * stats.cardinalities[2]))
    )
    skewed = Relation.from_rows([("x",)] * 19 + [("y",)], ["A"])
    assert RelationStats.from_relation(skewed).skew > RelationStats.from_relation(
        Relation.from_rows([("x",), ("y",)] * 10, ["A"])
    ).skew


def test_auto_selects_closed_capable_variants_and_answers_match_naive():
    """Acceptance: auto picks a closed-capable C-Cubing variant on two
    differently-shaped relations, and the cubes match brute-force recomputation."""
    shapes = {"dense": _dense_relation(), "sparse": _sparse_relation()}
    chosen = {}
    for label, relation in shapes.items():
        session = CubeSession.from_relation(relation).closed(min_sup=2).using("auto")
        plan = session.plan()
        assert plan.algorithm in algorithms_supporting_closed()
        assert plan.algorithm.startswith("c-cubing-")
        chosen[label] = plan.algorithm
        served = session.build()
        assert served.algorithm == plan.algorithm
        oracle = compute_closed_cube(relation, min_sup=2, algorithm="naive-closed")
        assert served.cube.same_cells(oracle), served.cube.diff(oracle)
    assert chosen["dense"] != chosen["sparse"]


# --------------------------------------------------------------------------- #
# Property: named answers == positional answers, across the whole lattice      #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("min_sup", [1, 2])
def test_named_answers_equal_positional_answers_everywhere(seed, min_sup):
    rng = random.Random(seed)
    num_dims = rng.randint(2, 4)
    cardinality = rng.randint(2, 3)
    num_tuples = rng.randint(4, 14)
    names = [f"dim{d}" for d in range(num_dims)]
    rows = [
        tuple(f"val{rng.randrange(cardinality)}" for _ in range(num_dims))
        for _ in range(num_tuples)
    ]

    relation = Relation.from_rows(rows, names)
    positional = open_query_engine(compute_closed_cube(relation, min_sup=min_sup))
    named = CubeSession.from_rows(rows, schema=names).closed(min_sup=min_sup).build()

    domains = [[None] + sorted({row[dim] for row in rows}) for dim in range(num_dims)]
    for raw_cell in itertools.product(*domains):
        spec = {
            names[dim]: value
            for dim, value in enumerate(raw_cell)
            if value is not None
        }
        encoded = tuple(
            None if value is None else relation.encode(dim, value)
            for dim, value in enumerate(raw_cell)
        )
        named_answer = named.point(spec)
        positional_answer = positional.point(encoded)
        assert named_answer.count == positional_answer.count, (raw_cell, spec)
        # And both agree with brute-force recomputation over the base table.
        true_count = count_matching_tuples(relation, encoded)
        expected = true_count if true_count >= min_sup else None
        assert named_answer.count == expected, (raw_cell, true_count)
        if named_answer.found:
            assert dict(named_answer.coordinates) == spec


# --------------------------------------------------------------------------- #
# Partitioned sessions                                                         #
# --------------------------------------------------------------------------- #


def test_partitioned_session_matches_unpartitioned_answers():
    plain = retail_session().closed(min_sup=1).build()
    parted = retail_session().closed(min_sup=1).partitioned("store").build()
    for spec in (
        {"store": "nyc"},
        {"product": "shoe"},
        {"store": "sfo", "day": "tue"},
        {},
    ):
        assert parted.point(spec).count == plain.point(spec).count
    assert parted.stats()["shards"] >= 2
    by_product = {a.coordinates_dict()["product"]: a.count for a in parted.rollup(["product"])}
    assert by_product == {"shoe": 4, "sock": 2}


def test_partitioned_session_rejects_measures():
    from repro.core.errors import AlgorithmError

    with pytest.raises(AlgorithmError, match="measures"):
        retail_session().measures(Sum("price")).partitioned("store").build()


def test_schema_must_match_relation():
    relation = Relation.from_rows([("x", "y")], ["A", "B"])
    with pytest.raises(SchemaError, match="do not match"):
        CubeSession(relation, schema=["B", "A"])
