"""Tests for snapshot persistence (:mod:`repro.storage.snapshot`).

The acceptance property: a ``save`` → ``load`` round trip preserves every
query answer — exhaustively over the lattice — and the loaded cube keeps its
maintenance abilities (appending, re-snapshotting).  Failure modes must be
crisp :class:`SnapshotError`\\ s, not pickle stack traces.
"""

from __future__ import annotations

import pytest

from repro import CubeSession, ServingCube, Sum
from repro.core.errors import SnapshotError
from repro.storage.snapshot import SNAPSHOT_MAGIC, SNAPSHOT_VERSION, save_snapshot

from test_incremental import split_rows
from test_query_engine import lattice_cells


@pytest.mark.parametrize("seed", range(6))
def test_round_trip_preserves_all_query_answers(seed, tmp_path):
    base_rows, _ = split_rows(seed + 40)
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    path = str(tmp_path / "cube.snap")
    size = cube.save(path)
    assert size > 0

    loaded = ServingCube.load(path)
    assert loaded.schema.dimensions == cube.schema.dimensions
    assert loaded.algorithm == cube.algorithm
    assert loaded.config == cube.config
    for cell in lattice_cells(cube.relation):
        assert loaded.engine.point(cell).count == cube.engine.point(cell).count


def test_round_trip_preserves_measures_and_named_answers(tmp_path):
    rows = [("a", "x", 2.0), ("a", "y", 4.0), ("b", "x", 8.0)]
    schema = {"dimensions": ["L", "R"], "measures": ["m"]}
    cube = (
        CubeSession.from_rows(rows, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("m"))
        .build()
    )
    path = str(tmp_path / "cube.snap")
    cube.save(path)
    loaded = ServingCube.load(path)
    answer = loaded.point({"L": "a"})
    assert answer.count == 2
    assert answer.measure("sum(m)") == pytest.approx(6.0)
    assert loaded.point({"L": "never-seen"}).count is None


def test_loaded_cube_keeps_appending_incrementally(tmp_path):
    base_rows, delta_rows = split_rows(99)
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    path = str(tmp_path / "cube.snap")
    cube.save(path)

    loaded = ServingCube.load(path)
    report = loaded.append(delta_rows)
    assert report.mode == "delta-merge"
    rebuilt = CubeSession.from_rows(base_rows + delta_rows).closed(min_sup=1).build()
    for cell in lattice_cells(loaded.relation):
        assert loaded.engine.point(cell).count == rebuilt.engine.point(cell).count
    # ... and re-snapshots.
    second = str(tmp_path / "cube2.snap")
    loaded.save(second)
    assert ServingCube.load(second).relation.num_tuples == loaded.relation.num_tuples


def test_partitioned_round_trip(tmp_path):
    rows = [("s1", "a"), ("s1", "b"), ("s2", "a"), ("s2", "a"), ("s3", "b")]
    cube = (
        CubeSession.from_rows(rows, schema=["store", "product"])
        .closed()
        .partitioned("store")
        .build()
    )
    path = str(tmp_path / "part.snap")
    cube.save(path)
    loaded = ServingCube.load(path)
    assert loaded.config.partitioned
    assert loaded.engine.partition_dim == cube.engine.partition_dim
    for cell in lattice_cells(cube.relation):
        assert loaded.engine.point(cell).count == cube.engine.point(cell).count
    assert loaded.append([("s1", "c")]).mode == "partition-refresh"
    assert loaded.point({"store": "s1"}).count == 3


def test_save_overwrites_atomically(tmp_path):
    cube = CubeSession.from_rows([("a",), ("b",)]).closed().build()
    path = str(tmp_path / "cube.snap")
    cube.save(path)
    cube.append([("c",)])
    cube.save(path)
    assert ServingCube.load(path).relation.num_tuples == 3
    assert list(tmp_path.iterdir()) == [tmp_path / "cube.snap"], (
        "no temporary files may be left behind"
    )


def test_not_a_snapshot_raises(tmp_path):
    path = tmp_path / "noise.bin"
    path.write_bytes(b"definitely not a snapshot")
    with pytest.raises(SnapshotError, match="magic"):
        ServingCube.load(str(path))


def test_truncated_snapshot_raises(tmp_path):
    path = tmp_path / "short.snap"
    path.write_bytes(SNAPSHOT_MAGIC[:4])
    with pytest.raises(SnapshotError, match="too short"):
        ServingCube.load(str(path))


def test_unsupported_version_raises(tmp_path):
    cube = CubeSession.from_rows([("a",)]).closed().build()
    path = tmp_path / "future.snap"
    save_snapshot(cube, str(path))
    data = bytearray(path.read_bytes())
    data[8:12] = (SNAPSHOT_VERSION + 1).to_bytes(4, "big")
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="version"):
        ServingCube.load(str(path))


def test_corrupt_payload_raises(tmp_path):
    cube = CubeSession.from_rows([("a",)]).closed().build()
    path = tmp_path / "corrupt.snap"
    save_snapshot(cube, str(path))
    data = path.read_bytes()
    path.write_bytes(data[:16])  # header intact, payload chopped
    with pytest.raises(SnapshotError, match="corrupt"):
        ServingCube.load(str(path))


def test_save_refuses_guessed_config(tmp_path):
    """Snapshotting a config-less cube would launder guessed build settings
    into an explicit config on load, re-enabling maintenance the original
    cube refuses — it must raise instead."""
    from repro import compute_closed_cube
    from repro.core.relation import Relation
    from repro.query.engine import QueryEngine
    from repro.session.schema import CubeSchema

    relation = Relation.from_rows([("a",), ("b",)])
    iceberg = compute_closed_cube(relation, min_sup=2)
    serving = ServingCube(
        relation, CubeSchema(("d0",)), iceberg, QueryEngine(iceberg), "c-cubing-star"
    )
    path = str(tmp_path / "guessed.snap")
    with pytest.raises(SnapshotError, match="ServingConfig"):
        serving.save(path)
    assert list(tmp_path.iterdir()) == [], "the refused save must write nothing"
