"""Tests for snapshot persistence (:mod:`repro.storage.snapshot`).

The acceptance property: a ``save`` → ``load`` round trip preserves every
query answer — exhaustively over the lattice, in both the v1 monolithic and
the v2 streaming format — and the loaded cube keeps its maintenance
abilities (appending, re-snapshotting).  Failure modes must be crisp
:class:`SnapshotError`\\ s, not pickle stack traces: a truncated chunk, a
checksum mismatch, and an unknown version byte each name their problem.
"""

from __future__ import annotations

import struct

import pytest

from repro import CubeSession, ServingCube, Sum
from repro.core.errors import SnapshotError
from repro.storage.snapshot import (
    FRAME_CELLS,
    SNAPSHOT_MAGIC,
    SNAPSHOT_V1,
    SNAPSHOT_V2,
    save_snapshot,
    snapshot_version,
)

from test_incremental import split_rows
from test_query_engine import lattice_cells

FORMATS = ["v1", "v2"]

_HEADER_SIZE = struct.calcsize(">8sI")
_FRAME = struct.Struct(">BII")


def frame_spans(data: bytes):
    """(kind, payload_start, payload_length) for every v2 frame in ``data``."""
    spans = []
    offset = _HEADER_SIZE
    while offset < len(data):
        kind, length, _crc = _FRAME.unpack_from(data, offset)
        spans.append((kind, offset + _FRAME.size, length))
        offset += _FRAME.size + length
    return spans


@pytest.mark.parametrize("format", FORMATS)
@pytest.mark.parametrize("seed", range(6))
def test_round_trip_preserves_all_query_answers(seed, format, tmp_path):
    base_rows, _ = split_rows(seed + 40)
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    path = str(tmp_path / "cube.snap")
    size = cube.save(path, format=format)
    assert size > 0

    loaded = ServingCube.load(path)
    assert loaded.schema.dimensions == cube.schema.dimensions
    assert loaded.algorithm == cube.algorithm
    assert loaded.config == cube.config
    for cell in lattice_cells(cube.relation):
        assert loaded.engine.point(cell).count == cube.engine.point(cell).count


@pytest.mark.parametrize("format", FORMATS)
def test_round_trip_preserves_measures_and_named_answers(format, tmp_path):
    rows = [("a", "x", 2.0), ("a", "y", 4.0), ("b", "x", 8.0)]
    schema = {"dimensions": ["L", "R"], "measures": ["m"]}
    cube = (
        CubeSession.from_rows(rows, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("m"))
        .build()
    )
    path = str(tmp_path / "cube.snap")
    cube.save(path, format=format)
    loaded = ServingCube.load(path)
    answer = loaded.point({"L": "a"})
    assert answer.count == 2
    assert answer.measure("sum(m)") == pytest.approx(6.0)
    assert loaded.point({"L": "never-seen"}).count is None


def test_format_versions_land_in_the_header(tmp_path):
    cube = CubeSession.from_rows([("a",), ("b",)]).closed().build()
    v1 = str(tmp_path / "cube.v1")
    v2 = str(tmp_path / "cube.v2")
    cube.save(v1, format="v1")
    cube.save(v2)  # v2 is the default
    assert snapshot_version(v1) == SNAPSHOT_V1
    assert snapshot_version(v2) == SNAPSHOT_V2
    with pytest.raises(SnapshotError, match="unknown snapshot format"):
        cube.save(str(tmp_path / "cube.v3"), format="v3")


def test_v1_v2_v1_round_trip_equality(tmp_path):
    """Converting v1 → v2 → v1 must preserve cells, measures, and min_sup,
    checked over the exhaustive lattice of a small cube."""
    rows = [("a", "x", 1.0), ("a", "y", 2.0), ("b", "x", 4.0),
            ("b", "x", 8.0), ("c", "z", 16.0)]
    schema = {"dimensions": ["L", "R"], "measures": ["m"]}
    original = (
        CubeSession.from_rows(rows, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("m"))
        .build()
    )
    paths = [str(tmp_path / name) for name in ("a.v1", "b.v2", "c.v1")]
    original.save(paths[0], format="v1")
    middle = ServingCube.load(paths[0])
    middle.save(paths[1], format="v2")
    back = ServingCube.load(paths[1])
    back.save(paths[2], format="v1")
    final = ServingCube.load(paths[2])
    assert snapshot_version(paths[0]) == snapshot_version(paths[2]) == SNAPSHOT_V1
    assert snapshot_version(paths[1]) == SNAPSHOT_V2
    for cube in (middle, back, final):
        assert cube.config.min_sup == original.config.min_sup
        assert cube.config.closed == original.config.closed
        # Measure specs pickle as equivalent-but-distinct objects; compare
        # their identity by name.
        assert [spec.name for spec in cube.config.measures] == [
            spec.name for spec in original.config.measures
        ]
        assert cube.cube.same_cells(original.cube)
        for cell, stats in original.cube.items():
            assert cube.cube[cell].measures == pytest.approx(stats.measures)
    for cell in lattice_cells(original.relation):
        assert final.engine.point(cell).count == original.engine.point(cell).count


def test_loaded_cube_keeps_appending_incrementally(tmp_path):
    base_rows, delta_rows = split_rows(99)
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    path = str(tmp_path / "cube.snap")
    cube.save(path)

    loaded = ServingCube.load(path)
    report = loaded.append(delta_rows)
    assert report.mode == "delta-merge"
    rebuilt = CubeSession.from_rows(base_rows + delta_rows).closed(min_sup=1).build()
    for cell in lattice_cells(loaded.relation):
        assert loaded.engine.point(cell).count == rebuilt.engine.point(cell).count
    # ... and re-snapshots.
    second = str(tmp_path / "cube2.snap")
    loaded.save(second)
    assert ServingCube.load(second).relation.num_tuples == loaded.relation.num_tuples


def test_partitioned_round_trip(tmp_path):
    rows = [("s1", "a"), ("s1", "b"), ("s2", "a"), ("s2", "a"), ("s3", "b")]
    cube = (
        CubeSession.from_rows(rows, schema=["store", "product"])
        .closed()
        .partitioned("store")
        .build()
    )
    path = str(tmp_path / "part.snap")
    cube.save(path)
    loaded = ServingCube.load(path)
    assert loaded.config.partitioned
    assert loaded.engine.partition_dim == cube.engine.partition_dim
    for cell in lattice_cells(cube.relation):
        assert loaded.engine.point(cell).count == cube.engine.point(cell).count
    assert loaded.append([("s1", "c")]).mode == "partition-refresh"
    assert loaded.point({"store": "s1"}).count == 3


@pytest.mark.parametrize("format", FORMATS)
def test_save_overwrites_atomically(format, tmp_path):
    cube = CubeSession.from_rows([("a",), ("b",)]).closed().build()
    path = str(tmp_path / "cube.snap")
    cube.save(path, format=format)
    cube.append([("c",)])
    cube.save(path, format=format)
    assert ServingCube.load(path).relation.num_tuples == 3
    assert list(tmp_path.iterdir()) == [tmp_path / "cube.snap"], (
        "no temporary files may be left behind"
    )


def test_not_a_snapshot_raises(tmp_path):
    path = tmp_path / "noise.bin"
    path.write_bytes(b"definitely not a snapshot")
    with pytest.raises(SnapshotError, match="magic"):
        ServingCube.load(str(path))


def test_truncated_snapshot_raises(tmp_path):
    path = tmp_path / "short.snap"
    path.write_bytes(SNAPSHOT_MAGIC[:4])
    with pytest.raises(SnapshotError, match="too short"):
        ServingCube.load(str(path))


def test_unknown_version_byte_raises(tmp_path):
    cube = CubeSession.from_rows([("a",)]).closed().build()
    path = tmp_path / "future.snap"
    save_snapshot(cube, str(path))
    data = bytearray(path.read_bytes())
    data[8:12] = (99).to_bytes(4, "big")
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="version 99"):
        ServingCube.load(str(path))


def test_v1_corrupt_payload_raises(tmp_path):
    cube = CubeSession.from_rows([("a",)]).closed().build()
    path = tmp_path / "cube.snap"
    save_snapshot(cube, str(path), format="v1")
    data = path.read_bytes()
    path.write_bytes(data[:16])  # header intact, payload chopped
    with pytest.raises(SnapshotError, match="corrupt payload"):
        ServingCube.load(str(path))


def test_v2_truncated_chunk_raises(tmp_path):
    """A file that stops mid-chunk — the torn-write crash artefact — must
    name the truncation, not raise a pickle stack trace."""
    cube = CubeSession.from_rows([("a", "x"), ("b", "y")]).closed().build()
    path = tmp_path / "cube.snap"
    save_snapshot(cube, str(path))
    data = path.read_bytes()
    kind, start, length = next(
        span for span in frame_spans(data) if span[0] == FRAME_CELLS
    )
    path.write_bytes(data[: start + max(1, length // 2)])
    with pytest.raises(SnapshotError, match="truncated"):
        ServingCube.load(str(path))


def test_v2_torn_frame_header_raises(tmp_path):
    cube = CubeSession.from_rows([("a",)]).closed().build()
    path = tmp_path / "cube.snap"
    save_snapshot(cube, str(path))
    data = path.read_bytes()
    path.write_bytes(data[: _HEADER_SIZE + 4])  # half a frame header
    with pytest.raises(SnapshotError, match="truncated mid-frame-header"):
        ServingCube.load(str(path))


def test_v2_missing_end_frame_raises(tmp_path):
    cube = CubeSession.from_rows([("a",)]).closed().build()
    path = tmp_path / "cube.snap"
    save_snapshot(cube, str(path))
    data = path.read_bytes()
    kind, start, length = frame_spans(data)[-1]
    header_start = start - _FRAME.size
    path.write_bytes(data[:header_start])  # every frame intact, END dropped
    with pytest.raises(SnapshotError, match="END frame"):
        ServingCube.load(str(path))


def test_v2_checksum_mismatch_raises(tmp_path):
    cube = CubeSession.from_rows([("a", "x"), ("b", "y")]).closed().build()
    path = tmp_path / "cube.snap"
    save_snapshot(cube, str(path))
    data = bytearray(path.read_bytes())
    kind, start, length = next(
        span for span in frame_spans(bytes(data)) if span[0] == FRAME_CELLS
    )
    data[start + length // 2] ^= 0xFF  # flip one payload byte
    path.write_bytes(bytes(data))
    with pytest.raises(SnapshotError, match="checksum"):
        ServingCube.load(str(path))


# --------------------------------------------------------------------------- #
# Delta segments (v2 incremental mode)                                          #
# --------------------------------------------------------------------------- #


def test_delta_segments_fold_to_the_live_state(tmp_path):
    """base + segments must equal the cube that kept appending in memory."""
    base_rows, delta_rows = split_rows(7)
    cube = CubeSession.from_rows(base_rows).closed(min_sup=1).build()
    base = str(tmp_path / "base.snap")
    cube.save(base)
    segments = []
    for index in range(2):
        start = cube.relation.num_tuples
        half = delta_rows[index::2]
        cube.append(half)
        segment = str(tmp_path / f"seg{index}")
        assert cube.save_delta(segment, start) > 0
        segments.append(segment)

    loaded = ServingCube.load(base, segments=segments)
    assert loaded.cube.same_cells(cube.cube), loaded.cube.diff(cube.cube)
    for cell in lattice_cells(cube.relation):
        assert loaded.engine.point(cell).count == cube.engine.point(cell).count
    # The folded cube keeps maintaining and re-snapshotting itself.
    loaded.append(base_rows[:1])
    cube.append(base_rows[:1])
    assert loaded.cube.same_cells(cube.cube)
    resaved = str(tmp_path / "resaved.snap")
    loaded.save(resaved)
    assert ServingCube.load(resaved).cube.same_cells(cube.cube)


def test_delta_segments_must_stack_in_order(tmp_path):
    cube = CubeSession.from_rows([("a", "x"), ("b", "y")]).closed().build()
    base = str(tmp_path / "base.snap")
    cube.save(base)
    start = cube.relation.num_tuples
    cube.append([("c", "z")])
    first = str(tmp_path / "seg1")
    cube.save_delta(first, start)
    start = cube.relation.num_tuples
    cube.append([("d", "w")])
    second = str(tmp_path / "seg2")
    cube.save_delta(second, start)
    with pytest.raises(SnapshotError, match="write order"):
        ServingCube.load(base, segments=[second, first])
    with pytest.raises(SnapshotError, match="not a delta segment|segment"):
        ServingCube.load(base, segments=[base])  # a base is not a segment


def test_delta_segment_refused_for_iceberg_cubes(tmp_path):
    rows = [("a", "x"), ("a", "x"), ("b", "y"), ("b", "y")]
    cube = CubeSession.from_rows(rows).closed(min_sup=2).build()
    cube.append(rows)
    with pytest.raises(SnapshotError, match="full closed cubes"):
        cube.save_delta(str(tmp_path / "seg"), 4)


def test_delta_segment_with_no_new_rows_refused(tmp_path):
    cube = CubeSession.from_rows([("a", "x")]).closed().build()
    with pytest.raises(SnapshotError, match="nothing to fold"):
        cube.save_delta(str(tmp_path / "seg"), cube.relation.num_tuples)


def test_save_refuses_guessed_config(tmp_path):
    """Snapshotting a config-less cube would launder guessed build settings
    into an explicit config on load, re-enabling maintenance the original
    cube refuses — it must raise instead."""
    from repro import compute_closed_cube
    from repro.core.relation import Relation
    from repro.query.engine import QueryEngine
    from repro.session.schema import CubeSchema

    relation = Relation.from_rows([("a",), ("b",)])
    iceberg = compute_closed_cube(relation, min_sup=2)
    serving = ServingCube(
        relation, CubeSchema(("d0",)), iceberg, QueryEngine(iceberg), "c-cubing-star"
    )
    path = str(tmp_path / "guessed.snap")
    with pytest.raises(SnapshotError, match="ServingConfig"):
        serving.save(path)
    assert list(tmp_path.iterdir()) == [], "the refused save must write nothing"


# --------------------------------------------------------------------------- #
# Corruption fuzzing: no byte flip or truncation may load silently             #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(20))
def test_fuzzed_corruption_always_raises_snapshot_error(seed, tmp_path):
    """Random byte flips and truncations across the whole v2 file: every
    single one must surface as SnapshotError — never a silently-wrong cube,
    never a raw struct/zlib/Unicode error leaking out of the loader.

    The per-frame CRC32 catches payload damage; the header checks catch
    magic/version damage; everything structural that slips past a CRC
    (e.g. a flipped frame-kind byte re-framing the stream) is wrapped by
    the loader's consistency net.  This test is the contract that the net
    has no holes.
    """
    import random as random_module

    rows = [("a", "x", 2.0), ("a", "y", 4.0), ("b", "x", 8.0), ("b", "y", 1.0)]
    schema = {"dimensions": ["L", "R"], "measures": ["m"]}
    cube = (
        CubeSession.from_rows(rows, schema=schema)
        .closed(min_sup=1)
        .measures(Sum("m"))
        .build()
    )
    pristine_path = str(tmp_path / "cube.snap")
    cube.save(pristine_path, format="v2")
    with open(pristine_path, "rb") as handle:
        pristine = handle.read()

    rng = random_module.Random(seed)
    target = str(tmp_path / "corrupt.snap")
    for case in range(25):
        data = bytearray(pristine)
        if case % 5 == 4:
            # Truncate anywhere, including mid-header and mid-frame.
            data = data[: rng.randrange(len(data))]
        else:
            # Flip 1-4 random bytes (XOR with a random non-zero mask).
            for _ in range(rng.randint(1, 4)):
                position = rng.randrange(len(data))
                data[position] ^= rng.randint(1, 255)
        with open(target, "wb") as handle:
            handle.write(bytes(data))
        try:
            loaded = ServingCube.load(target)
        except SnapshotError:
            continue
        except Exception as exc:  # pragma: no cover - the failure mode
            pytest.fail(
                f"seed {seed} case {case}: non-SnapshotError leaked: "
                f"{type(exc).__name__}: {exc}"
            )
        # A successful load of corrupted bytes is only acceptable when the
        # damage landed in dead space and the cube is bit-identical in
        # behaviour; CRC32 over every frame makes that impossible for any
        # byte the loader actually reads, so reaching here is a bug.
        pytest.fail(  # pragma: no cover - the failure mode
            f"seed {seed} case {case}: corrupted snapshot loaded "
            f"({len(loaded)} cells)"
        )
