"""Tests for the star-tree structures and the Star/StarArray algorithm family."""

from __future__ import annotations

import pytest

from repro.algorithms.base import CubingOptions, get_algorithm
from repro.algorithms.star_tree import (
    STAR,
    build_star_tables,
    build_tree_from_tids,
    collect_tids,
    mapped_value,
)
from repro.core.errors import AlgorithmError
from repro.core.measures import MeasureSet, SumMeasure
from repro.core.validate import reference_closed_cube, reference_iceberg_cube
from repro import Relation

from conftest import random_relation


@pytest.fixture
def figure1_relation():
    """The base table of the paper's Figure 1 (dimensions A-E, 6 tuples)."""
    rows = [
        ("a1", "b1", "c1", "d1", "e2"),
        ("a1", "b1", "c1", "d2", "e2"),
        ("a1", "b1", "c2", "d2", "e1"),
        ("a1", "b2", "c1", "d1", "e1"),
        ("a1", "b2", "c2", "d1", "e1"),
        ("a2", "b2", "c3", "d1", "e1"),
    ]
    return Relation.from_rows(rows, ["A", "B", "C", "D", "E"])


def test_star_tables_map_infrequent_values_to_star(figure1_relation):
    tables = build_star_tables(figure1_relation, min_sup=3, dims=range(5))
    # a1 appears 5 times (kept), a2 once (starred).
    assert tables[0][0] == 0
    assert tables[0][1] == STAR
    assert mapped_value(tables, 0, 1) == STAR
    assert mapped_value(None, 0, 1) == 1


def test_tree_construction_counts_and_closedness(figure1_relation):
    tree = build_tree_from_tids(
        figure1_relation,
        tids=list(range(6)),
        dims=[0, 1, 2, 3, 4],
        fixed={},
        tree_mask=0,
        min_sup=1,
        track_closedness=True,
    )
    assert tree.root.count == 6
    a1 = tree.root.child(0)
    assert a1 is not None and a1.count == 5
    b1 = a1.child(0)
    assert b1 is not None and b1.count == 3
    # The paper's example: node c1 under a1/b1 groups tuples t1, t2 and its
    # closed information says they share A, B, C (and here also E).
    c1 = b1.child(0)
    assert c1.count == 2
    assert c1.closed.rep_tid == 0
    assert c1.closed.closed_mask & 0b00111 == 0b00111
    assert tree.size() > 6


def test_star_array_truncation_keeps_pools(figure1_relation):
    tree = build_tree_from_tids(
        figure1_relation,
        tids=list(range(6)),
        dims=[0, 1, 2, 3, 4],
        fixed={},
        tree_mask=0,
        min_sup=3,
        track_closedness=False,
        truncate=True,
    )
    a1 = tree.root.child(0)
    b1 = a1.child(0)
    assert b1.count == 3
    # b1's children all have count < 3, so they are truncated into pools.
    for child in b1.children.values():
        assert child.pool is not None
        assert not child.children
    assert sorted(collect_tids(a1)) == [0, 1, 2, 3, 4]


@pytest.mark.parametrize("name", ["star-cubing", "star-array"])
def test_star_family_iceberg_matches_oracle(name, small_skewed_relation):
    for min_sup in (1, 2, 3):
        expected = reference_iceberg_cube(small_skewed_relation, min_sup)
        cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


@pytest.mark.parametrize("name", ["c-cubing-star", "c-cubing-star-array"])
def test_star_family_closed_matches_oracle(name, small_skewed_relation):
    for min_sup in (1, 2, 3):
        expected = reference_closed_cube(small_skewed_relation, min_sup)
        cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(
            small_skewed_relation
        ).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_closed_pruning_counters_fire(figure1_relation):
    algo = get_algorithm("c-cubing-star", CubingOptions(min_sup=1))
    algo.run(figure1_relation)
    counters = algo.counters
    assert counters.get("lemma5_pruned", 0) + counters.get("lemma6_pruned", 0) > 0


def test_star_family_rejects_payload_measures(small_skewed_relation):
    options = CubingOptions(min_sup=1, measures=MeasureSet([SumMeasure("missing")]))
    with pytest.raises(AlgorithmError):
        get_algorithm("star-cubing", options).run(small_skewed_relation)


def test_star_family_dimension_order_does_not_change_result(figure1_relation):
    base = get_algorithm("c-cubing-star", CubingOptions(min_sup=2)).run(figure1_relation).cube
    for order in ("cardinality", "entropy", [4, 3, 2, 1, 0]):
        cube = get_algorithm(
            "c-cubing-star", CubingOptions(min_sup=2, dimension_order=order)
        ).run(figure1_relation).cube
        assert base.same_cells(cube)


def test_star_family_initial_collapsed(figure1_relation):
    expected = get_algorithm(
        "naive", CubingOptions(min_sup=1, closed=True, initial_collapsed=(0, 2))
    ).run(figure1_relation).cube
    for name in ("c-cubing-star", "c-cubing-star-array"):
        cube = get_algorithm(
            name, CubingOptions(min_sup=1, initial_collapsed=(0, 2))
        ).run(figure1_relation).cube
        assert expected.same_cells(cube), expected.diff(cube)


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("name", ["star-cubing", "star-array", "c-cubing-star", "c-cubing-star-array"])
def test_star_family_on_random_relations(name, seed):
    relation = random_relation(seed + 500, max_dims=5, max_cardinality=3, max_tuples=30)
    closed = name.startswith("c-cubing")
    for min_sup in (1, 2):
        if closed:
            expected = reference_closed_cube(relation, min_sup)
        else:
            expected = reference_iceberg_cube(relation, min_sup)
        cube = get_algorithm(name, CubingOptions(min_sup=min_sup)).run(relation).cube
        assert expected.same_cells(cube), expected.diff(cube)


def test_single_dimension_relation():
    relation = Relation.from_columns([[0, 0, 1, 2]])
    for name in ("c-cubing-star", "c-cubing-star-array", "c-cubing-mm", "qc-dfs"):
        cube = get_algorithm(name, CubingOptions(min_sup=1)).run(relation).cube
        expected = reference_closed_cube(relation, 1)
        assert expected.same_cells(cube)
