"""Docs CI: intra-repo markdown link check + run every example to completion.

Documentation drifts in two ways and this checker catches both:

* **dead links** — a doc references ``docs/SOMETHING.md`` or
  ``src/repro/module.py`` that was renamed or never existed.  Every
  relative link and inline file reference in every tracked ``*.md`` is
  resolved against the working tree; a miss fails the job.  External
  ``http(s)://`` links are *not* fetched — CI must not depend on the
  network — only their syntax is accepted.
* **rotten examples** — ``examples/*.py`` are executable documentation;
  each is run as a subprocess (``PYTHONPATH=src``) and must exit 0.

Usage (from the repo root)::

    python tools/check_docs.py              # links + examples
    python tools/check_docs.py --links-only
    python tools/check_docs.py --examples-only

Exit status 0 when everything holds, 1 otherwise, with one line per
failure.  ``tests/test_docs.py`` unit-tests the link extraction and
resolution helpers.
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
from typing import Iterable, List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: ``[text](target)`` markdown links, excluding images' leading ``!``.
MARKDOWN_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked intra-repo file references like ``docs/ROLLUPS.md`` or
#: ``benchmarks/bench_replication.py`` — the dominant linking style in this
#: repo's docs.  Only multi-component paths with a known text/code suffix
#: are checked; bare module names and command lines are not paths.
FILE_REFERENCE = re.compile(
    r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+\.(?:md|py|toml|yml|json))`"
)

#: Directories whose markdown is checked.  ``related/`` and venvs are not
#: part of the documentation set.
DOC_ROOTS = ("", "docs", "benchmarks", "examples", "src", "tests", "tools")


def iter_markdown_files(root: str = REPO_ROOT) -> List[str]:
    """Every tracked ``*.md`` under the documentation roots, sorted."""
    found: List[str] = []
    for doc_root in DOC_ROOTS:
        base = os.path.join(root, doc_root) if doc_root else root
        if not os.path.isdir(base):
            continue
        if doc_root:
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                found.extend(
                    os.path.join(dirpath, name)
                    for name in filenames if name.endswith(".md")
                )
        else:
            found.extend(
                os.path.join(base, name)
                for name in os.listdir(base)
                if name.endswith(".md") and os.path.isfile(
                    os.path.join(base, name)
                )
            )
    return sorted(set(found))


def extract_targets(text: str) -> List[str]:
    """All link targets and backticked file references in a document."""
    targets = [match.group(1) for match in MARKDOWN_LINK.finditer(text)]
    targets.extend(
        match.group(1) for match in FILE_REFERENCE.finditer(text)
    )
    return targets


def resolve_target(doc_path: str, target: str,
                   root: str = REPO_ROOT) -> Tuple[bool, str]:
    """Check one link target; returns ``(ok, detail)``.

    Relative targets resolve against the document's directory first, then
    against the repo root (the style used by backticked references).
    Anchors (``#section``) are stripped; bare anchors and external URLs
    pass without a filesystem check.
    """
    if target.startswith(("http://", "https://", "mailto:")):
        return True, "external"
    path, _, _ = target.partition("#")
    if not path:
        return True, "bare anchor"
    candidates = [
        os.path.normpath(os.path.join(os.path.dirname(doc_path), path)),
        os.path.normpath(os.path.join(root, path)),
        # Module-path style: docs refer to ``repro/storage/atomic.py``
        # without the ``src/`` layout prefix.
        os.path.normpath(os.path.join(root, "src", path)),
    ]
    for candidate in candidates:
        if os.path.exists(candidate):
            return True, candidate
    return False, f"no such file: {path}"


def check_links(root: str = REPO_ROOT) -> List[str]:
    """Every broken intra-repo reference, as ``doc: target`` lines."""
    failures: List[str] = []
    for doc in iter_markdown_files(root):
        with open(doc, encoding="utf-8") as handle:
            text = handle.read()
        rel_doc = os.path.relpath(doc, root)
        for target in extract_targets(text):
            ok, detail = resolve_target(doc, target, root)
            if not ok:
                failures.append(f"{rel_doc}: [{target}] -> {detail}")
    return failures


def iter_examples(root: str = REPO_ROOT) -> List[str]:
    directory = os.path.join(root, "examples")
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory) if name.endswith(".py")
    )


def run_examples(root: str = REPO_ROOT,
                 timeout: float = 300.0) -> List[str]:
    """Run each example as a subprocess; returns failure lines."""
    env = dict(os.environ)
    src = os.path.join(root, "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else src
    )
    failures: List[str] = []
    for example in iter_examples(root):
        rel = os.path.relpath(example, root)
        print(f"running {rel} ...", flush=True)
        try:
            completed = subprocess.run(
                [sys.executable, example],
                cwd=root, env=env, timeout=timeout,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
        except subprocess.TimeoutExpired:
            failures.append(f"{rel}: timed out after {timeout:.0f}s")
            continue
        if completed.returncode != 0:
            tail = completed.stdout.decode(errors="replace").splitlines()
            failures.append(
                f"{rel}: exit {completed.returncode}\n    "
                + "\n    ".join(tail[-12:])
            )
    return failures


def report(label: str, failures: Iterable[str]) -> bool:
    failures = list(failures)
    if failures:
        print(f"\n{label}: {len(failures)} failure(s)")
        for line in failures:
            print(f"  {line}")
        return False
    print(f"{label}: OK")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links-only", action="store_true",
                        help="skip running the examples")
    parser.add_argument("--examples-only", action="store_true",
                        help="skip the markdown link check")
    parser.add_argument("--example-timeout", type=float, default=300.0,
                        help="per-example wall-clock limit in seconds")
    args = parser.parse_args(argv)

    ok = True
    if not args.examples_only:
        docs = iter_markdown_files()
        print(f"checking links in {len(docs)} markdown files")
        ok = report("links", check_links()) and ok
    if not args.links_only:
        ok = report(
            "examples", run_examples(timeout=args.example_timeout)
        ) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
